// CampaignSpec — a complete, serializable description of a fault-
// injection campaign: which target and error model, which EA subsets,
// which test-case matrix, how the injection streams are seeded and how
// the plan is sharded. A spec written to disk (spec.json, versioned) is
// everything a later process needs to re-run, resume or audit the
// campaign; results are a pure function of the spec.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/arrestment_experiments.hpp"

namespace epea::campaign {

/// Which experiment family the campaign runs (maps onto the drivers in
/// src/exp/).
enum class CampaignKind {
    kPermeability,  ///< Table 1: per-pair error permeability (error model A)
    kSevere,        ///< Fig 3: RAM/stack coverage under the severe model
    kRecovery,      ///< §extension: paired baseline/ERM severe runs
    kInput,         ///< Table 4: EA-subset coverage for input errors (model A)
};

[[nodiscard]] const char* to_string(CampaignKind kind);
[[nodiscard]] CampaignKind campaign_kind_from_string(const std::string& s);

/// Adaptive early stopping: stop scheduling shards once every estimated
/// proportion's Wilson interval is tighter than `half_width`.
struct AdaptiveOptions {
    bool enabled = false;
    double z = 1.96;           ///< normal quantile (95 %)
    double half_width = 0.05;  ///< convergence threshold on (hi-lo)/2
    std::uint64_t min_trials = 20;  ///< per proportion, before converging
};

struct CampaignSpec {
    /// Format version of spec.json; bump when fields change meaning.
    static constexpr std::int64_t kVersion = 1;

    std::string name = "campaign";
    CampaignKind kind = CampaignKind::kPermeability;
    std::string target = "arrestment";

    /// Global test-case indices (rows of the 5x5 matrix) to run.
    std::vector<std::size_t> case_ids;
    std::size_t times_per_bit = 10;
    std::uint64_t max_ticks = 30000;
    std::uint64_t severe_period = 20;
    /// Base seed of the per-case injection streams (permeability kind).
    std::uint64_t seed = 0x7ab1e1ULL;
    /// Number of shards the case matrix is dealt into (round-robin).
    std::size_t shards = 5;

    /// Delta campaigns (permeability kind): inject only these modules;
    /// empty = all. Serialized only when non-empty, so pre-existing specs
    /// and their manifest config hashes are unchanged.
    std::vector<std::string> module_filter;

    /// EA subsets scored by severe campaigns (defaults: EH and PA sets).
    std::vector<exp::SubsetSpec> subsets;
    /// Signals wrapped with recovery ERMs (recovery kind).
    std::vector<std::string> guarded_signals;

    AdaptiveOptions adaptive;

    /// A spec with the paper's defaults for `kind`: all 25 cases, the
    /// EH/PA subsets, the extended-placement ERM signals.
    [[nodiscard]] static CampaignSpec defaults(CampaignKind kind);

    /// The case indices belonging to shard `s` (round-robin deal).
    [[nodiscard]] std::vector<std::size_t> shard_cases(std::size_t s) const;
    /// Shards actually used (never more than there are cases).
    [[nodiscard]] std::size_t effective_shards() const;

    /// Versioned JSON round-trip. from_json throws std::runtime_error on
    /// malformed input or an unsupported version.
    [[nodiscard]] std::string to_json() const;
    [[nodiscard]] static CampaignSpec from_json(const std::string& text);
};

}  // namespace epea::campaign
