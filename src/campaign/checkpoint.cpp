#include "campaign/checkpoint.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "campaign/json.hpp"
#include "util/stats.hpp"

namespace epea::campaign {

namespace {

JsonValue severe_to_json(const exp::SevereCoverageResult& r) {
    JsonObject o;
    o.emplace("runs", JsonValue(r.runs));
    o.emplace("failures", JsonValue(r.failures));
    o.emplace("ram_locations", JsonValue(r.ram_locations));
    o.emplace("stack_locations", JsonValue(r.stack_locations));
    JsonArray sets;
    for (const auto& set : r.sets) {
        JsonObject so;
        so.emplace("name", JsonValue(set.set_name));
        JsonArray cells;
        for (const auto& region : set.cells) {
            for (const auto& cell : region) {
                JsonObject co;
                co.emplace("n", JsonValue(cell.n));
                co.emplace("detected", JsonValue(cell.detected));
                cells.emplace_back(std::move(co));
            }
        }
        so.emplace("cells", JsonValue(std::move(cells)));
        sets.emplace_back(std::move(so));
    }
    o.emplace("sets", JsonValue(std::move(sets)));
    return JsonValue(std::move(o));
}

exp::SevereCoverageResult severe_from_json(const JsonValue& v) {
    exp::SevereCoverageResult r;
    r.runs = static_cast<std::uint64_t>(v.at("runs").as_int());
    r.failures = static_cast<std::uint64_t>(v.at("failures").as_int());
    r.ram_locations = static_cast<std::size_t>(v.at("ram_locations").as_int());
    r.stack_locations = static_cast<std::size_t>(v.at("stack_locations").as_int());
    for (const auto& sv : v.at("sets").as_array()) {
        exp::SevereSetResult set;
        set.set_name = sv.at("name").as_string();
        const auto& cells = sv.at("cells").as_array();
        if (cells.size() != 9) throw std::runtime_error("severe set needs 9 cells");
        std::size_t i = 0;
        for (auto& region : set.cells) {
            for (auto& cell : region) {
                cell.n = static_cast<std::uint64_t>(cells[i].at("n").as_int());
                cell.detected =
                    static_cast<std::uint64_t>(cells[i].at("detected").as_int());
                ++i;
            }
        }
        r.sets.push_back(std::move(set));
    }
    return r;
}

JsonValue recovery_to_json(const exp::RecoveryResult& r) {
    JsonObject o;
    o.emplace("runs", JsonValue(r.runs));
    o.emplace("failures_baseline", JsonValue(r.failures_baseline));
    o.emplace("failures_with_erm", JsonValue(r.failures_with_erm));
    o.emplace("repairs", JsonValue(r.repairs));
    o.emplace("erm_rom", JsonValue(static_cast<std::int64_t>(r.erm_cost.rom)));
    o.emplace("erm_ram", JsonValue(static_cast<std::int64_t>(r.erm_cost.ram)));
    return JsonValue(std::move(o));
}

exp::RecoveryResult recovery_from_json(const JsonValue& v) {
    exp::RecoveryResult r;
    r.runs = static_cast<std::uint64_t>(v.at("runs").as_int());
    r.failures_baseline = static_cast<std::uint64_t>(v.at("failures_baseline").as_int());
    r.failures_with_erm = static_cast<std::uint64_t>(v.at("failures_with_erm").as_int());
    r.repairs = static_cast<std::uint64_t>(v.at("repairs").as_int());
    r.erm_cost.rom = static_cast<std::uint32_t>(v.at("erm_rom").as_int());
    r.erm_cost.ram = static_cast<std::uint32_t>(v.at("erm_ram").as_int());
    return r;
}

JsonValue stats_to_json(const util::RunningStats& s) {
    JsonObject o;
    o.emplace("n", JsonValue(s.count()));
    o.emplace("mean", JsonValue(s.mean()));
    o.emplace("m2", JsonValue(s.m2()));
    o.emplace("sum", JsonValue(s.sum()));
    o.emplace("min", JsonValue(s.min()));
    o.emplace("max", JsonValue(s.max()));
    return JsonValue(std::move(o));
}

util::RunningStats stats_from_json(const JsonValue& v) {
    return util::RunningStats::restore(
        static_cast<std::size_t>(v.at("n").as_int()), v.at("mean").as_double(),
        v.at("m2").as_double(), v.at("sum").as_double(), v.at("min").as_double(),
        v.at("max").as_double());
}

JsonValue coverage_row_to_json(const exp::InputCoverageRow& row) {
    JsonObject o;
    o.emplace("signal", JsonValue(row.signal));
    o.emplace("injected", JsonValue(row.injected));
    o.emplace("active", JsonValue(row.active));
    o.emplace("detected_any", JsonValue(row.detected_any));
    JsonArray per_ea;
    for (const std::uint64_t d : row.detected_per_ea) per_ea.emplace_back(d);
    o.emplace("per_ea", JsonValue(std::move(per_ea)));
    JsonArray per_subset;
    for (const std::uint64_t d : row.detected_per_subset) per_subset.emplace_back(d);
    o.emplace("per_subset", JsonValue(std::move(per_subset)));
    o.emplace("latency", stats_to_json(row.latency));
    return JsonValue(std::move(o));
}

exp::InputCoverageRow coverage_row_from_json(const JsonValue& v) {
    exp::InputCoverageRow row;
    row.signal = v.at("signal").as_string();
    row.injected = static_cast<std::uint64_t>(v.at("injected").as_int());
    row.active = static_cast<std::uint64_t>(v.at("active").as_int());
    row.detected_any = static_cast<std::uint64_t>(v.at("detected_any").as_int());
    for (const auto& d : v.at("per_ea").as_array()) {
        row.detected_per_ea.push_back(static_cast<std::uint64_t>(d.as_int()));
    }
    for (const auto& d : v.at("per_subset").as_array()) {
        row.detected_per_subset.push_back(static_cast<std::uint64_t>(d.as_int()));
    }
    row.latency = stats_from_json(v.at("latency"));
    return row;
}

JsonValue input_to_json(const exp::InputCoverageResult& r) {
    JsonObject o;
    JsonArray eas;
    for (const auto& n : r.ea_names) eas.emplace_back(n);
    o.emplace("ea_names", JsonValue(std::move(eas)));
    JsonArray subs;
    for (const auto& n : r.subset_names) subs.emplace_back(n);
    o.emplace("subset_names", JsonValue(std::move(subs)));
    JsonArray rows;
    for (const auto& row : r.rows) rows.emplace_back(coverage_row_to_json(row));
    o.emplace("rows", JsonValue(std::move(rows)));
    o.emplace("all", coverage_row_to_json(r.all));
    return JsonValue(std::move(o));
}

exp::InputCoverageResult input_from_json(const JsonValue& v) {
    exp::InputCoverageResult r;
    for (const auto& n : v.at("ea_names").as_array()) {
        r.ea_names.push_back(n.as_string());
    }
    for (const auto& n : v.at("subset_names").as_array()) {
        r.subset_names.push_back(n.as_string());
    }
    for (const auto& row : v.at("rows").as_array()) {
        r.rows.push_back(coverage_row_from_json(row));
    }
    r.all = coverage_row_from_json(v.at("all"));
    return r;
}

JsonValue fastpath_to_json(const fi::FastPathStats& s) {
    JsonObject o;
    o.emplace("full_runs", JsonValue(s.full_runs));
    o.emplace("forked_runs", JsonValue(s.forked_runs));
    o.emplace("pruned_runs", JsonValue(s.pruned_runs));
    o.emplace("skipped_runs", JsonValue(s.skipped_runs));
    o.emplace("ticks_executed", JsonValue(s.ticks_executed));
    o.emplace("ticks_saved", JsonValue(s.ticks_saved));
    o.emplace("cache_hits", JsonValue(s.cache_hits));
    o.emplace("cache_misses", JsonValue(s.cache_misses));
    o.emplace("lanes_launched", JsonValue(s.lanes_launched));
    o.emplace("lanes_retired_pruned", JsonValue(s.lanes_retired_pruned));
    o.emplace("lanes_retired_end", JsonValue(s.lanes_retired_end));
    o.emplace("lanes_retired_sealed", JsonValue(s.lanes_retired_sealed));
    JsonArray widths;
    for (const std::uint64_t n : s.batch_widths) widths.emplace_back(n);
    o.emplace("batch_widths", JsonValue(std::move(widths)));
    return JsonValue(std::move(o));
}

fi::FastPathStats fastpath_from_json(const JsonValue& v) {
    fi::FastPathStats s;
    s.full_runs = static_cast<std::uint64_t>(v.at("full_runs").as_int());
    s.forked_runs = static_cast<std::uint64_t>(v.at("forked_runs").as_int());
    s.pruned_runs = static_cast<std::uint64_t>(v.at("pruned_runs").as_int());
    s.skipped_runs = static_cast<std::uint64_t>(v.at("skipped_runs").as_int());
    s.ticks_executed = static_cast<std::uint64_t>(v.at("ticks_executed").as_int());
    s.ticks_saved = static_cast<std::uint64_t>(v.at("ticks_saved").as_int());
    s.cache_hits = static_cast<std::uint64_t>(v.at("cache_hits").as_int());
    s.cache_misses = static_cast<std::uint64_t>(v.at("cache_misses").as_int());
    // Lane counters arrived with the batch kernel; absent in checkpoints
    // written by earlier builds.
    const auto opt_u64 = [&v](const char* key) -> std::uint64_t {
        const JsonValue* f = v.find(key);
        return f ? static_cast<std::uint64_t>(f->as_int()) : 0;
    };
    s.lanes_launched = opt_u64("lanes_launched");
    s.lanes_retired_pruned = opt_u64("lanes_retired_pruned");
    s.lanes_retired_end = opt_u64("lanes_retired_end");
    s.lanes_retired_sealed = opt_u64("lanes_retired_sealed");
    if (const JsonValue* widths = v.find("batch_widths")) {
        const JsonArray& arr = widths->as_array();
        for (std::size_t b = 0; b < s.batch_widths.size() && b < arr.size(); ++b) {
            s.batch_widths[b] = static_cast<std::uint64_t>(arr[b].as_int());
        }
    }
    return s;
}

}  // namespace

std::string ShardResult::to_json() const {
    JsonObject o;
    o.emplace("shard", JsonValue(shard));
    o.emplace("kind", JsonValue(to_string(kind)));
    JsonArray ids;
    for (const std::size_t c : case_ids) ids.emplace_back(c);
    o.emplace("case_ids", JsonValue(std::move(ids)));
    o.emplace("runs", JsonValue(runs));
    o.emplace("wall_seconds", JsonValue(wall_seconds));
    o.emplace("fastpath", fastpath_to_json(fastpath));
    o.emplace("threads", JsonValue(threads));

    switch (kind) {
        case CampaignKind::kPermeability: {
            JsonArray arr;
            for (const auto& p : pairs) {
                JsonObject po;
                po.emplace("module", JsonValue(p.module));
                po.emplace("in_port", JsonValue(static_cast<std::int64_t>(p.in_port)));
                po.emplace("out_port", JsonValue(static_cast<std::int64_t>(p.out_port)));
                po.emplace("affected", JsonValue(p.affected));
                po.emplace("active", JsonValue(p.active));
                arr.emplace_back(std::move(po));
            }
            o.emplace("pairs", JsonValue(std::move(arr)));
            break;
        }
        case CampaignKind::kSevere:
            o.emplace("severe", severe_to_json(severe));
            break;
        case CampaignKind::kRecovery:
            o.emplace("recovery", recovery_to_json(recovery));
            break;
        case CampaignKind::kInput:
            o.emplace("input", input_to_json(input));
            break;
    }
    return JsonValue(std::move(o)).dump();
}

ShardResult ShardResult::from_json(const std::string& text) {
    const JsonValue root = JsonValue::parse(text);
    ShardResult r;
    r.shard = static_cast<std::size_t>(root.at("shard").as_int());
    r.kind = campaign_kind_from_string(root.at("kind").as_string());
    for (const auto& v : root.at("case_ids").as_array()) {
        r.case_ids.push_back(static_cast<std::size_t>(v.as_int()));
    }
    r.runs = static_cast<std::uint64_t>(root.at("runs").as_int());
    r.wall_seconds = root.at("wall_seconds").as_double();
    // Optional fields: absent in checkpoints written before the fast path
    // existed — such shards still load and merge (counters stay zero).
    if (const JsonValue* fp = root.find("fastpath")) {
        r.fastpath = fastpath_from_json(*fp);
    }
    if (const JsonValue* th = root.find("threads")) {
        r.threads = static_cast<std::size_t>(th->as_int());
    }

    switch (r.kind) {
        case CampaignKind::kPermeability:
            for (const auto& v : root.at("pairs").as_array()) {
                PairCountRecord p;
                p.module = v.at("module").as_string();
                p.in_port = static_cast<std::uint32_t>(v.at("in_port").as_int());
                p.out_port = static_cast<std::uint32_t>(v.at("out_port").as_int());
                p.affected = static_cast<std::uint64_t>(v.at("affected").as_int());
                p.active = static_cast<std::uint64_t>(v.at("active").as_int());
                r.pairs.push_back(std::move(p));
            }
            break;
        case CampaignKind::kSevere:
            r.severe = severe_from_json(root.at("severe"));
            break;
        case CampaignKind::kRecovery:
            r.recovery = recovery_from_json(root.at("recovery"));
            break;
        case CampaignKind::kInput:
            r.input = input_from_json(root.at("input"));
            break;
    }
    return r;
}

void atomic_write_file(const std::string& path, const std::string& content) {
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) throw std::runtime_error("cannot write " + tmp);
        out << content;
        out.flush();
        if (!out) throw std::runtime_error("short write to " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw std::runtime_error("cannot rename " + tmp + " -> " + path);
    }
}

std::string shard_file_name(std::size_t shard) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "shard-%03zu.json", shard);
    return buf;
}

void save_shard(const std::string& dir, const ShardResult& result) {
    atomic_write_file(dir + "/" + shard_file_name(result.shard),
                      result.to_json() + "\n");
}

std::optional<ShardResult> load_shard(const std::string& dir, std::size_t shard) {
    std::ifstream in(dir + "/" + shard_file_name(shard), std::ios::binary);
    if (!in) return std::nullopt;
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
        ShardResult r = ShardResult::from_json(buf.str());
        if (r.shard != shard) return std::nullopt;  // misnamed/foreign file
        return r;
    } catch (const std::runtime_error&) {
        return std::nullopt;  // corrupt checkpoint: treat as absent
    }
}

}  // namespace epea::campaign
