#include "erm/wrapper.hpp"

#include <algorithm>
#include <stdexcept>

namespace epea::erm {

void RecoveryWrapper::reset() {
    last_good_ = 0;
    have_last_ = false;
    repairs_ = 0;
    first_repair_ = runtime::kInvalidTick;
}

std::int64_t RecoveryWrapper::repaired_value(std::int64_t rejected,
                                             runtime::Tick now) const noexcept {
    if (policy_ == RecoveryPolicy::kHoldLastGood || !have_last_) {
        return have_last_ ? last_good_ : 0;
    }
    // kClamp: project onto the allowed envelope relative to last_good_.
    switch (params_.type) {
        case ea::EaType::kContinuous: {
            std::int64_t lo = params_.min;
            std::int64_t hi = params_.max;
            if (now >= params_.settle_tick) {
                lo = std::max(lo, params_.settled_min);
                hi = std::min(hi, params_.settled_max);
            }
            lo = std::max(lo, last_good_ - params_.max_rate_down);
            hi = std::min(hi, last_good_ + params_.max_rate_up);
            if (lo > hi) return last_good_;  // inconsistent envelope: hold
            return std::clamp(rejected, lo, hi);
        }
        case ea::EaType::kMonotonic: {
            const std::int64_t lo = std::max(params_.floor, last_good_);
            const std::int64_t hi = last_good_ + params_.max_increment;
            return std::clamp(rejected, lo, hi);
        }
        case ea::EaType::kDiscrete:
            // No meaningful projection for enumerations: hold.
            return last_good_;
    }
    return last_good_;
}

void RecoveryWrapper::repair(runtime::SignalStore& store, runtime::Tick now) {
    const auto value = static_cast<std::int64_t>(store.get(signal_));
    if (!ea::ExecutableAssertion::violates(params_, last_good_, value, have_last_,
                                           now)) {
        last_good_ = value;
        have_last_ = true;
        return;
    }
    const std::int64_t repaired = repaired_value(value, now);
    store.set(signal_, static_cast<std::uint32_t>(repaired));
    last_good_ = repaired;
    have_last_ = true;
    ++repairs_;
    if (first_repair_ == runtime::kInvalidTick) first_repair_ = now;
}

std::size_t ErmBank::add(std::string name, model::SignalId signal, ea::EaParams params,
                         RecoveryPolicy policy) {
    for (const auto& w : wrappers_) {
        if (w->name() == name) throw std::invalid_argument("duplicate ERM: " + name);
    }
    wrappers_.push_back(
        std::make_unique<RecoveryWrapper>(std::move(name), signal, params, policy));
    return wrappers_.size() - 1;
}

RecoveryWrapper& ErmBank::by_name(std::string_view name) {
    for (auto& w : wrappers_) {
        if (w->name() == name) return *w;
    }
    throw std::invalid_argument("unknown ERM: " + std::string{name});
}

void ErmBank::arm(runtime::Simulator& sim) {
    for (auto& w : wrappers_) sim.add_recoverer(w.get());
}

ea::EaCost ErmBank::total_cost() const {
    ea::EaCost total;
    for (const auto& w : wrappers_) total = total + w->cost();
    return total;
}

std::size_t ErmBank::total_repairs() const {
    std::size_t total = 0;
    for (const auto& w : wrappers_) total += w->repair_count();
    return total;
}

}  // namespace epea::erm
