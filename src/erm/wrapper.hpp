// Error Recovery Mechanisms (ERMs) — the recovery side of the paper's
// EDM/ERM placement problem. The paper places ERMs with rule R2 (high
// permeability) but evaluates only detection; this module implements the
// mechanisms themselves as containment wrappers (cf. Salles et al.,
// "MetaKernels and Fault Containment Wrappers", FTCS-29 — the paper's
// reference [17]) so recovery effectiveness can be measured too.
//
// A RecoveryWrapper re-uses the executable-assertion acceptance test: if
// the guarded signal violates its allowed behaviour, the wrapper repairs
// it in place (hold-last-good or clamp-to-allowed) before downstream
// modules and the environment consume it.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ea/assertion.hpp"
#include "runtime/monitor.hpp"
#include "runtime/simulator.hpp"

namespace epea::erm {

/// What to write back when the acceptance test fails.
enum class RecoveryPolicy : std::uint8_t {
    kHoldLastGood,  ///< freeze the signal at its last accepted value
    kClamp,         ///< project the value onto the allowed envelope
};

[[nodiscard]] constexpr const char* to_string(RecoveryPolicy p) noexcept {
    return p == RecoveryPolicy::kHoldLastGood ? "hold-last-good" : "clamp";
}

/// ROM/RAM footprint of a recovery wrapper: the acceptance-test constants
/// plus the recovery stub (12 B code) and the last-good cell (2 B).
[[nodiscard]] constexpr ea::EaCost wrapper_cost(ea::EaType type) noexcept {
    const ea::EaCost base = ea::cost_of(type);
    return ea::EaCost{base.rom + 12, base.ram + 2};
}

/// One armed recovery wrapper guarding one signal.
class RecoveryWrapper final : public runtime::SignalRecoverer {
public:
    RecoveryWrapper(std::string name, model::SignalId signal, ea::EaParams params,
                    RecoveryPolicy policy)
        : name_(std::move(name)), signal_(signal), params_(params), policy_(policy) {}

    // runtime::SignalRecoverer
    void reset() override;
    void repair(runtime::SignalStore& store, runtime::Tick now) override;

    void save_state(runtime::StateWriter& w) const override {
        w.i64(last_good_);
        w.boolean(have_last_);
        w.u64(repairs_);
        w.tick(first_repair_);
    }

    void restore_state(runtime::StateReader& r) override {
        last_good_ = r.i64();
        have_last_ = r.boolean();
        repairs_ = static_cast<std::size_t>(r.u64());
        first_repair_ = r.tick();
    }

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] model::SignalId signal() const noexcept { return signal_; }
    [[nodiscard]] RecoveryPolicy policy() const noexcept { return policy_; }
    [[nodiscard]] const ea::EaParams& params() const noexcept { return params_; }
    [[nodiscard]] ea::EaCost cost() const noexcept { return wrapper_cost(params_.type); }

    /// Number of repairs performed since reset().
    [[nodiscard]] std::size_t repair_count() const noexcept { return repairs_; }
    [[nodiscard]] runtime::Tick first_repair() const noexcept { return first_repair_; }

    void set_params(const ea::EaParams& params) noexcept { params_ = params; }

    /// The repaired value for a rejected reading (exposed for tests).
    [[nodiscard]] std::int64_t repaired_value(std::int64_t rejected,
                                              runtime::Tick now) const noexcept;

private:
    std::string name_;
    model::SignalId signal_;
    ea::EaParams params_;
    RecoveryPolicy policy_;
    std::int64_t last_good_ = 0;
    bool have_last_ = false;
    std::size_t repairs_ = 0;
    runtime::Tick first_repair_ = runtime::kInvalidTick;
};

/// A named set of recovery wrappers with cost accounting, mirroring
/// ea::EaBank.
class ErmBank {
public:
    std::size_t add(std::string name, model::SignalId signal, ea::EaParams params,
                    RecoveryPolicy policy);

    [[nodiscard]] std::size_t size() const noexcept { return wrappers_.size(); }
    [[nodiscard]] RecoveryWrapper& at(std::size_t index) { return *wrappers_.at(index); }
    [[nodiscard]] const RecoveryWrapper& at(std::size_t index) const {
        return *wrappers_.at(index);
    }
    [[nodiscard]] RecoveryWrapper& by_name(std::string_view name);

    /// Registers every wrapper as a recoverer on the simulator.
    void arm(runtime::Simulator& sim);

    [[nodiscard]] ea::EaCost total_cost() const;
    [[nodiscard]] std::size_t total_repairs() const;

private:
    std::vector<std::unique_ptr<RecoveryWrapper>> wrappers_;
};

}  // namespace epea::erm
