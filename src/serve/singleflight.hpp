// Single-flight execution for expensive serve answers (DESIGN.md §13).
// When N concurrent requests ask for the same cold ground-truth subset
// evaluation, exactly one of them (the leader) runs the campaign; the
// rest block on the in-flight entry and share its result. This is the
// mechanism behind the acceptance criterion "concurrent identical cold
// place/optimize requests execute exactly one campaign".
//
// Results are returned as shared_ptr<const V>; a leader whose compute
// throws propagates the exception to every waiter (stored as
// std::exception_ptr) and removes the entry so a later request retries.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace epea::serve {

template <typename V>
class SingleFlight {
public:
    SingleFlight() = default;
    SingleFlight(const SingleFlight&) = delete;
    SingleFlight& operator=(const SingleFlight&) = delete;

    /// Runs `compute` for `key` unless an identical call is already in
    /// flight, in which case this blocks and shares the leader's
    /// result. Returns {value, led} where `led` is true for the leader.
    /// Unlike a memo, the result is NOT cached after the flight lands —
    /// layering a memo on top is the caller's choice.
    std::pair<std::shared_ptr<const V>, bool> run(
        const std::string& key, const std::function<V()>& compute) {
        std::shared_ptr<Flight> flight;
        bool leader = false;
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            auto it = inflight_.find(key);
            if (it != inflight_.end()) {
                flight = it->second;
            } else {
                flight = std::make_shared<Flight>();
                inflight_.emplace(key, flight);
                leader = true;
            }
        }
        if (leader) {
            leads_.fetch_add(1, std::memory_order_relaxed);
            try {
                auto value = std::make_shared<const V>(compute());
                land(key, flight, std::move(value), nullptr);
            } catch (...) {
                land(key, flight, nullptr, std::current_exception());
            }
        } else {
            joins_.fetch_add(1, std::memory_order_relaxed);
            std::unique_lock<std::mutex> lock(flight->mutex);
            flight->cv.wait(lock, [&] { return flight->done; });
        }
        if (flight->error) std::rethrow_exception(flight->error);
        return {flight->value, leader};
    }

    /// Leaders started / followers that joined an existing flight.
    [[nodiscard]] std::uint64_t leads() const noexcept {
        return leads_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t joins() const noexcept {
        return joins_.load(std::memory_order_relaxed);
    }

private:
    struct Flight {
        std::mutex mutex;
        std::condition_variable cv;
        bool done = false;
        std::shared_ptr<const V> value;
        std::exception_ptr error;
    };

    void land(const std::string& key, const std::shared_ptr<Flight>& flight,
              std::shared_ptr<const V> value, std::exception_ptr error) {
        {
            const std::lock_guard<std::mutex> lock(flight->mutex);
            flight->value = std::move(value);
            flight->error = error;
            flight->done = true;
        }
        flight->cv.notify_all();
        const std::lock_guard<std::mutex> lock(mutex_);
        inflight_.erase(key);
    }

    std::mutex mutex_;
    std::unordered_map<std::string, std::shared_ptr<Flight>> inflight_;
    std::atomic<std::uint64_t> leads_{0};
    std::atomic<std::uint64_t> joins_{0};
};

}  // namespace epea::serve
