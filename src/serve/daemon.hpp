// The `epea_tool serve` process shell: wires a Service into an
// HttpServer, installs SIGINT/SIGTERM handlers, and blocks until a
// signal arrives — then drains gracefully (stop accepting, finish
// in-flight requests, join submitted campaign threads) and returns so
// the CLI can flush observability artifacts and exit 0.
#pragma once

#include "serve/http.hpp"
#include "serve/service.hpp"

namespace epea::serve {

struct DaemonOptions {
    ServiceOptions service;
    ServerOptions server;
    /// Announce the bound port on stderr once listening (the CI smoke
    /// job greps for it).
    bool announce = true;
};

/// Runs the daemon until SIGINT/SIGTERM. Returns 0 after a clean drain,
/// 1 when startup fails (e.g. the port is taken).
[[nodiscard]] int run_daemon(const DaemonOptions& options);

}  // namespace epea::serve
