// Minimal blocking HTTP/1.1 client for loopback use only — shared by
// the serve tests and the bench/serve_load driver so both talk to the
// daemon exactly the way a real peer would (full TCP round trip, not
// an in-process shortcut). Supports keep-alive: one HttpClient holds
// one connection and reconnects transparently when the server closes.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace epea::serve {

struct ClientResponse {
    int status = 0;
    std::map<std::string, std::string> headers;  // lower-cased keys
    std::string body;
};

class HttpClient {
public:
    explicit HttpClient(std::uint16_t port);
    ~HttpClient();

    HttpClient(const HttpClient&) = delete;
    HttpClient& operator=(const HttpClient&) = delete;

    /// One round trip. `body` is sent with Content-Length for POST.
    /// Throws std::runtime_error on connect/IO failure.
    ClientResponse request(const std::string& method, const std::string& target,
                           const std::string& body = "");

    ClientResponse get(const std::string& target) {
        return request("GET", target);
    }
    ClientResponse post(const std::string& target, const std::string& body) {
        return request("POST", target, body);
    }

    /// Drops the current connection (forces a fresh one next request).
    void disconnect();

private:
    void connect();

    std::uint16_t port_;
    int fd_ = -1;
};

}  // namespace epea::serve
