#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "analysis/finding.hpp"
#include "analysis/matrix_lint.hpp"
#include "analysis/model_lint.hpp"
#include "analytic/benefit.hpp"
#include "analytic/report.hpp"
#include "campaign/executor.hpp"
#include "campaign/observer.hpp"
#include "epic/serialize.hpp"
#include "exp/paper_data.hpp"
#include "fi/batch.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "opt/optimizer.hpp"
#include "opt/report.hpp"
#include "prove/hints.hpp"
#include "target/arrestment_system.hpp"
#include "util/json.hpp"

namespace epea::serve {

namespace {

/// Handler error that already knows its HTTP status; everything the
/// client did wrong becomes one of these.
struct ServeError {
    int status;
    std::string object;
    std::string message;
};

/// Finding-style error body, shape-compatible with analysis::write_json
/// so clients parse one error format everywhere. The pseudo-rule
/// SERVE-E<status> deliberately lives outside the lint catalog (Report::
/// add would reject it) — serve transport errors are not lint findings.
HttpResponse error_response(int status, const std::string& object,
                            const std::string& message) {
    util::JsonObject finding;
    finding.emplace("artifact", util::JsonValue("serve:request"));
    finding.emplace("message", util::JsonValue(message));
    finding.emplace("object", util::JsonValue(object));
    finding.emplace("rule", util::JsonValue("SERVE-E" + std::to_string(status)));
    finding.emplace("severity", util::JsonValue("error"));
    util::JsonArray findings;
    findings.emplace_back(std::move(finding));
    util::JsonObject o;
    o.emplace("errors", util::JsonValue(1));
    o.emplace("findings", util::JsonValue(std::move(findings)));
    o.emplace("warnings", util::JsonValue(0));
    return HttpResponse::json(status, util::JsonValue(std::move(o)).dump() + "\n");
}

enum class Ep : std::size_t {
    kHealthz = 0,
    kVersion,
    kMetrics,
    kPredict,
    kOptimize,
    kLint,
    kCampaignSubmit,
    kCampaignStatus,
    kCampaignEvents,
    kOther,
    kCount,
};

struct EpInfo {
    const char* span;
    const char* counter;
    const char* histogram;
};

// Metric names are literals so the EPEA-W060 source lint sees them.
constexpr EpInfo kEpInfo[static_cast<std::size_t>(Ep::kCount)] = {
    {"serve.healthz", "serve.requests.healthz", "serve.latency.healthz"},
    {"serve.version", "serve.requests.version", "serve.latency.version"},
    {"serve.metrics", "serve.requests.metrics", "serve.latency.metrics"},
    {"serve.predict", "serve.requests.predict", "serve.latency.predict"},
    {"serve.optimize", "serve.requests.optimize", "serve.latency.optimize"},
    {"serve.lint", "serve.requests.lint", "serve.latency.lint"},
    {"serve.campaign_submit", "serve.requests.campaign_submit",
     "serve.latency.campaign_submit"},
    {"serve.campaign_status", "serve.requests.campaign_status",
     "serve.latency.campaign_status"},
    {"serve.campaign_events", "serve.requests.campaign_events",
     "serve.latency.campaign_events"},
    {"serve.other", "serve.requests.other", "serve.latency.other"},
};

std::vector<double> latency_bounds() {
    return {5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2,
            2.5e-2, 5e-2, 0.1,   0.25, 0.5,  1.0,   2.5,  5.0};
}

struct EpMetrics {
    obs::Counter* requests;
    obs::Histogram* latency;
};

EpMetrics& metrics_for(Ep ep) {
    static EpMetrics table[static_cast<std::size_t>(Ep::kCount)] = {};
    static std::once_flag once;
    std::call_once(once, [] {
        obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
        for (std::size_t i = 0; i < static_cast<std::size_t>(Ep::kCount); ++i) {
            table[i].requests = &reg.counter(kEpInfo[i].counter);
            table[i].latency = &reg.histogram(kEpInfo[i].histogram, latency_bounds());
        }
    });
    return table[static_cast<std::size_t>(ep)];
}

struct ServeCounters {
    obs::Counter* memo_hits;
    obs::Counter* memo_misses;
    obs::Counter* sf_leads;
    obs::Counter* sf_joins;
    obs::Counter* campaigns;
    obs::Counter* errors;
};

ServeCounters& counters() {
    static ServeCounters c = [] {
        obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
        return ServeCounters{&reg.counter("serve.memo.hits"),
                             &reg.counter("serve.memo.misses"),
                             &reg.counter("serve.singleflight.leads"),
                             &reg.counter("serve.singleflight.joins"),
                             &reg.counter("serve.optimize.campaigns"),
                             &reg.counter("serve.errors")};
    }();
    return c;
}

/// /v1/campaign/<id><suffix> → id, or empty when the target is no match.
std::string campaign_path_id(const std::string& target, const std::string& suffix) {
    const std::string prefix = "/v1/campaign/";
    if (target.rfind(prefix, 0) != 0 || target.size() <= prefix.size() + suffix.size()) {
        return "";
    }
    if (target.compare(target.size() - suffix.size(), suffix.size(), suffix) != 0) {
        return "";
    }
    const std::string id =
        target.substr(prefix.size(), target.size() - prefix.size() - suffix.size());
    return id.find('/') == std::string::npos ? id : "";
}

Ep classify(const HttpRequest& req, std::string& campaign_id) {
    const std::string& t = req.target;
    if (t == "/healthz") return Ep::kHealthz;
    if (t == "/version") return Ep::kVersion;
    if (t == "/metrics") return Ep::kMetrics;
    if (t == "/v1/analytic/predict") return Ep::kPredict;
    if (t == "/v1/place/optimize") return Ep::kOptimize;
    if (t == "/v1/lint") return Ep::kLint;
    if (t == "/v1/campaign/submit") return Ep::kCampaignSubmit;
    campaign_id = campaign_path_id(t, "/status");
    if (!campaign_id.empty()) return Ep::kCampaignStatus;
    campaign_id = campaign_path_id(t, "/events");
    if (!campaign_id.empty()) return Ep::kCampaignEvents;
    return Ep::kOther;
}

/// One SSE frame. The journal/timeline lines are single-line JSON, so a
/// single `data:` field frames each one.
std::string sse_event(const std::string& type, const std::string& data) {
    return "event: " + type + "\ndata: " + data + "\n\n";
}

/// Reads complete lines appended to `path` past `*offset` (at most
/// `max_bytes` per call, so one poll cannot balloon the send buffer),
/// advancing `*offset` past every full line consumed. A torn tail stays
/// unconsumed until its newline lands; a truncated/recreated file
/// restarts from 0.
std::vector<std::string> tail_lines(const std::string& path,
                                    std::uint64_t* offset,
                                    std::size_t max_bytes) {
    std::vector<std::string> lines;
    std::ifstream in(path, std::ios::binary);
    if (!in) return lines;
    in.seekg(0, std::ios::end);
    const auto size = static_cast<std::uint64_t>(in.tellg());
    if (size < *offset) *offset = 0;  // rewritten underneath us
    if (size == *offset) return lines;
    const std::size_t want =
        static_cast<std::size_t>(std::min<std::uint64_t>(size - *offset, max_bytes));
    std::string chunk(want, '\0');
    in.seekg(static_cast<std::streamoff>(*offset));
    in.read(chunk.data(), static_cast<std::streamsize>(want));
    chunk.resize(static_cast<std::size_t>(in.gcount()));
    std::size_t consumed = 0;
    std::size_t start = 0;
    for (;;) {
        const std::size_t nl = chunk.find('\n', start);
        if (nl == std::string::npos) break;
        if (nl > start) lines.push_back(chunk.substr(start, nl - start));
        start = nl + 1;
        consumed = start;
    }
    *offset += consumed;
    return lines;
}

/// Parses the request body as a JSON object; 400 otherwise.
util::JsonValue parse_body(const HttpRequest& req, const char* endpoint) {
    try {
        util::JsonValue v = util::JsonValue::parse(req.body);
        if (!v.is_object()) {
            throw std::runtime_error("request body must be a JSON object");
        }
        return v;
    } catch (const std::exception& e) {
        throw ServeError{400, endpoint, std::string("malformed JSON: ") + e.what()};
    }
}

std::string opt_string(const util::JsonValue& body, const char* key,
                       const std::string& fallback) {
    const util::JsonValue* v = body.find(key);
    return v ? v->as_string() : fallback;
}

/// Request-controlled sizing caps: an errant or hostile body must not
/// be able to demand unbounded work from one request.
constexpr std::int64_t kMaxRequestCases = 10'000;
constexpr std::int64_t kMaxRequestTimes = 10'000;

/// Validates `v` as an integer in [1, cap]; 400 otherwise. Negative
/// values in particular must never reach a size_t cast.
std::size_t positive_size(const util::JsonValue& v, const char* key,
                          std::int64_t cap, const char* endpoint) {
    std::int64_t n = 0;
    try {
        n = v.as_int();
    } catch (const std::exception&) {
        n = 0;  // non-integer: fails the range check below
    }
    if (n < 1 || n > cap) {
        throw ServeError{400, endpoint,
                         std::string("'") + key + "' must be an integer in 1.." +
                             std::to_string(cap)};
    }
    return static_cast<std::size_t>(n);
}

std::int64_t max_request_threads() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::int64_t>(hw);
}

/// A submitted campaign dir must stay inside --eval-dir: relative only,
/// with no "." / ".." / empty path segments; 400 otherwise.
void validate_campaign_dir(const std::string& dir) {
    if (dir[0] == '/') {
        throw ServeError{400, "campaign_submit",
                         "'dir' must be relative to the daemon's --eval-dir"};
    }
    std::size_t start = 0;
    for (;;) {
        const std::size_t slash = dir.find('/', start);
        const std::string_view component =
            std::string_view(dir).substr(start, slash == std::string::npos
                                                    ? std::string::npos
                                                    : slash - start);
        if (component.empty() || component == "." || component == "..") {
            throw ServeError{400, "campaign_submit",
                             "'dir' must not contain empty, '.' or '..' "
                             "path segments"};
        }
        if (slash == std::string::npos) break;
        start = slash + 1;
    }
}

const char* kMethodNotAllowed = "method not allowed";

}  // namespace

Service::Service(ServiceOptions options)
    : options_(std::move(options)),
      reach_memo_(options_.memo_shards, options_.memo_entries_per_shard) {
    if (options_.model_path.empty()) {
        system_ = std::make_unique<model::SystemModel>(target::make_arrestment_model());
    } else {
        std::ifstream in(options_.model_path);
        if (!in) {
            throw std::runtime_error("serve: cannot read model " + options_.model_path);
        }
        system_ = std::make_unique<model::SystemModel>(epic::load_system_text(in));
    }
    if (options_.matrix_path.empty()) {
        pm_ = std::make_unique<epic::PermeabilityMatrix>(exp::paper_matrix(*system_));
    } else {
        std::ifstream in(options_.matrix_path);
        if (!in) {
            throw std::runtime_error("serve: cannot read matrix " + options_.matrix_path);
        }
        pm_ = std::make_unique<epic::PermeabilityMatrix>(
            epic::load_matrix_csv(in, *system_));
    }
    engine_ = std::make_unique<analytic::Engine>(*pm_);
}

Service::~Service() { join_campaigns(); }

void Service::join_campaigns() {
    // Snapshot under the lock, join outside it: a worker that fails
    // while we join takes its own error_mutex, never campaigns_mutex_,
    // so drain cannot deadlock against a failing campaign.
    std::vector<std::shared_ptr<CampaignJob>> jobs;
    {
        const std::lock_guard<std::mutex> lock(campaigns_mutex_);
        jobs.reserve(campaigns_.size());
        for (auto& [id, job] : campaigns_) jobs.push_back(job);
    }
    const std::lock_guard<std::mutex> join_lock(join_mutex_);
    for (const auto& job : jobs) {
        if (job->worker.joinable()) job->worker.join();
    }
}

std::shared_ptr<const analytic::ReachProfile> Service::profile(
    model::SignalId source) {
    auto [value, hit] = reach_memo_.get_or_compute(
        system_->signal_name(source), [&] { return engine_->solve(source); });
    (hit ? counters().memo_hits : counters().memo_misses)->add();
    return value;
}

HttpResponse Service::handle(const HttpRequest& req) {
    std::string endpoint = "other";
    HttpResponse resp;
    std::string campaign_id;
    const Ep ep = classify(req, campaign_id);
    endpoint = kEpInfo[static_cast<std::size_t>(ep)].span;
    obs::Span span(kEpInfo[static_cast<std::size_t>(ep)].span);
    const auto t0 = std::chrono::steady_clock::now();
    try {
        switch (ep) {
            case Ep::kHealthz:
                if (req.method != "GET") throw ServeError{405, endpoint, kMethodNotAllowed};
                resp = handle_healthz();
                break;
            case Ep::kVersion:
                if (req.method != "GET") throw ServeError{405, endpoint, kMethodNotAllowed};
                resp = handle_version();
                break;
            case Ep::kMetrics:
                if (req.method != "GET") throw ServeError{405, endpoint, kMethodNotAllowed};
                resp = handle_metrics();
                break;
            case Ep::kPredict:
                if (req.method != "POST") throw ServeError{405, endpoint, kMethodNotAllowed};
                resp = handle_predict(req);
                break;
            case Ep::kOptimize:
                if (req.method != "POST") throw ServeError{405, endpoint, kMethodNotAllowed};
                resp = handle_optimize(req);
                break;
            case Ep::kLint:
                if (req.method != "POST") throw ServeError{405, endpoint, kMethodNotAllowed};
                resp = handle_lint(req);
                break;
            case Ep::kCampaignSubmit:
                if (req.method != "POST") throw ServeError{405, endpoint, kMethodNotAllowed};
                resp = handle_campaign_submit(req);
                break;
            case Ep::kCampaignStatus:
                if (req.method != "GET") throw ServeError{405, endpoint, kMethodNotAllowed};
                resp = handle_campaign_status(campaign_id);
                break;
            case Ep::kCampaignEvents:
                if (req.method != "GET") throw ServeError{405, endpoint, kMethodNotAllowed};
                resp = handle_campaign_events(campaign_id);
                break;
            case Ep::kOther:
            case Ep::kCount:
                throw ServeError{404, req.target, "no such endpoint"};
        }
    } catch (const ServeError& e) {
        resp = error_response(e.status, e.object, e.message);
    } catch (const std::invalid_argument& e) {
        resp = error_response(400, endpoint, e.what());
    } catch (const std::exception& e) {
        resp = error_response(500, endpoint, e.what());
    }
    if (resp.status >= 400) counters().errors->add();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    EpMetrics& m = metrics_for(ep);
    m.requests->add();
    m.latency->observe(seconds);
    return resp;
}

HttpResponse Service::handle_healthz() { return HttpResponse::text(200, "ok\n"); }

HttpResponse Service::handle_version() {
    util::JsonObject o;
    o.emplace("build_type", util::JsonValue(obs::build_type()));
    o.emplace("obs_enabled", util::JsonValue(obs::kEnabled));
    o.emplace("version", util::JsonValue(options_.tool_version));
    return HttpResponse::json(200, util::JsonValue(std::move(o)).dump() + "\n");
}

HttpResponse Service::handle_metrics() {
    std::ostringstream os;
    obs::write_prometheus(os, obs::MetricsRegistry::global().snapshot());
    HttpResponse r = HttpResponse::text(200, os.str());
    r.content_type = "text/plain; version=0.0.4";
    return r;
}

HttpResponse Service::handle_predict(const HttpRequest& req) {
    const util::JsonValue body = parse_body(req, "predict");
    const std::string sink_name = opt_string(body, "sink", "TOC2");
    const model::SignalId sink = system_->signal_id(sink_name);

    if (const util::JsonValue* source = body.find("source")) {
        const std::string source_name = source->as_string();
        const auto p = profile(system_->signal_id(source_name));
        return HttpResponse::json(
            200, analytic::predict_pair_json(source_name, sink_name,
                                             p->visibility[sink.index()],
                                             p->converged));
    }

    std::vector<analytic::PredictRow> rows;
    bool converged = true;
    for (const model::SignalId s : system_->all_signals()) {
        analytic::PredictRow row;
        row.signal = system_->signal_name(s);
        row.exposure = engine_->exposure(s);
        if (s != sink) {
            const auto p = profile(s);
            row.impact = p->visibility[sink.index()];
            converged = converged && p->converged;
        }
        rows.push_back(std::move(row));
    }
    return HttpResponse::json(
        200, analytic::predict_profile_json(sink_name, rows, converged));
}

HttpResponse Service::handle_optimize(const HttpRequest& req) {
    const util::JsonValue body = parse_body(req, "optimize");
    const std::string benefit = opt_string(body, "benefit", "visibility");
    const std::string error_model = opt_string(body, "error_model", "input");
    if (benefit != "visibility" && benefit != "analytic" &&
        benefit != "ground-truth") {
        throw ServeError{400, "optimize",
                         "unknown benefit '" + benefit +
                             "' (visibility|analytic|ground-truth)"};
    }
    const opt::ErrorModel model = opt::error_model_from_string(error_model);

    opt::SearchOptions search;
    if (const util::JsonValue* b = body.find("budget_memory")) {
        search.budget.memory = b->as_double();
    }
    if (const util::JsonValue* b = body.find("budget_time")) {
        search.budget.time = b->as_double();
    }
    opt::EvaluatorOptions gt;
    gt.model = model;
    gt.dir = options_.eval_dir;
    gt.cases = options_.gt_cases;
    gt.times_per_bit = options_.gt_times;
    gt.shards = options_.gt_shards;
    gt.threads = options_.gt_threads;
    if (const util::JsonValue* v = body.find("cases")) {
        gt.cases = positive_size(*v, "cases", kMaxRequestCases, "optimize");
    }
    if (const util::JsonValue* v = body.find("times")) {
        gt.times_per_bit = positive_size(*v, "times", kMaxRequestTimes, "optimize");
    }
    if (benefit == "ground-truth" && options_.eval_dir.empty()) {
        throw ServeError{503, "optimize",
                         "ground-truth benefit needs the daemon started with "
                         "--eval-dir"};
    }

    // Identical concurrent requests coalesce onto one computation; for
    // ground-truth that means exactly one campaign for N cold callers.
    util::JsonObject key_obj;
    key_obj.emplace("benefit", util::JsonValue(benefit));
    key_obj.emplace("budget_memory", util::JsonValue(search.budget.memory));
    key_obj.emplace("budget_time", util::JsonValue(search.budget.time));
    key_obj.emplace("cases", util::JsonValue(gt.cases));
    key_obj.emplace("error_model", util::JsonValue(error_model));
    key_obj.emplace("times", util::JsonValue(gt.times_per_bit));
    const std::string key = util::JsonValue(std::move(key_obj)).dump();

    auto [answer, led] = optimize_flight_.run(key, [&]() -> std::string {
        if (benefit == "ground-truth") {
            // subset_cache.json and the eval-* campaign directories are
            // one shared on-disk resource: evaluations serialize.
            const std::lock_guard<std::mutex> lock(gt_mutex_);
            opt::PlacementOptimizer optimizer =
                opt::PlacementOptimizer::ground_truth(gt);
            const opt::SearchResult result = optimizer.optimize(search);
            const std::size_t ran = optimizer.campaigns_executed();
            gt_campaigns_.fetch_add(ran, std::memory_order_relaxed);
            counters().campaigns->add(ran);
            return opt::optimize_result_json(result, optimizer.candidates(), model,
                                             benefit);
        }
        opt::PlacementOptimizer optimizer =
            benefit == "analytic"
                ? analytic::make_engine_optimizer(*pm_, model)
                : opt::PlacementOptimizer::analytic(*pm_, model);
        // Same certificate-derived pruning as the CLI, so responses stay
        // byte-identical to `epea_tool place optimize --json`.
        prove::attach_structural_hints(optimizer, *pm_, model);
        const opt::SearchResult result = optimizer.optimize(search);
        return opt::optimize_result_json(result, optimizer.candidates(), model,
                                         benefit);
    });
    (led ? counters().sf_leads : counters().sf_joins)->add();
    return HttpResponse::json(200, *answer);
}

HttpResponse Service::handle_lint(const HttpRequest& req) {
    const util::JsonValue body = parse_body(req, "lint");
    std::string kind;
    std::string text;
    try {
        kind = body.at("kind").as_string();
        text = body.at("text").as_string();
    } catch (const std::exception& e) {
        throw ServeError{400, "lint", e.what()};
    }
    std::istringstream in(text);
    analysis::Report report;
    if (kind == "model") {
        report = analysis::lint_model_text(in, "model:request");
    } else if (kind == "matrix") {
        report = analysis::lint_matrix_csv(in, *system_, "matrix:request");
    } else {
        throw ServeError{400, "lint", "unknown kind '" + kind + "' (model|matrix)"};
    }
    std::ostringstream os;
    analysis::write_json(os, report);
    return HttpResponse::json(200, os.str());
}

HttpResponse Service::handle_campaign_submit(const HttpRequest& req) {
    const util::JsonValue body = parse_body(req, "campaign_submit");
    const util::JsonValue* dir_field = body.find("dir");
    if (!dir_field) throw ServeError{400, "campaign_submit", "missing 'dir'"};
    const std::string raw_dir = dir_field->as_string();
    if (raw_dir.empty()) throw ServeError{400, "campaign_submit", "empty 'dir'"};
    validate_campaign_dir(raw_dir);
    if (options_.eval_dir.empty()) {
        throw ServeError{503, "campaign_submit",
                         "campaign submit needs the daemon started with "
                         "--eval-dir"};
    }
    const std::string dir = options_.eval_dir + "/" + raw_dir;

    campaign::CampaignSpec spec;
    if (const util::JsonValue* s = body.find("spec")) {
        try {
            spec = campaign::CampaignSpec::from_json(s->dump());
        } catch (const std::exception& e) {
            throw ServeError{400, "campaign_submit", e.what()};
        }
    } else {
        spec = campaign::CampaignSpec::defaults(
            campaign::campaign_kind_from_string(opt_string(body, "kind", "input")));
    }
    campaign::ExecutorOptions exec;
    exec.threads = 1;
    if (const util::JsonValue* t = body.find("threads")) {
        exec.threads =
            positive_size(*t, "threads", max_request_threads(), "campaign_submit");
    }
    if (const util::JsonValue* b = body.find("use_batch")) {
        try {
            exec.use_batch = b->as_bool();
        } catch (const std::exception&) {
            throw ServeError{400, "campaign_submit", "'use_batch' must be a boolean"};
        }
    }
    if (const util::JsonValue* w = body.find("batch_width")) {
        exec.batch_width = positive_size(
            *w, "batch_width", static_cast<std::int64_t>(fi::BatchRunner::kMaxWidth),
            "campaign_submit");
    }

    std::shared_ptr<CampaignJob> job;
    std::vector<std::shared_ptr<CampaignJob>> reaped;
    std::string id;
    {
        const std::lock_guard<std::mutex> lock(campaigns_mutex_);
        id = "c" + std::to_string(next_campaign_id_);
        job = std::make_shared<CampaignJob>();
        job->id = id;
        job->dir = dir;
        job->seq = next_campaign_id_++;
        campaigns_.emplace(id, job);

        // Reap: drop the oldest finished/failed jobs beyond the retention
        // cap so a long-lived daemon's table stays bounded (their on-disk
        // checkpoints remain the durable record; status answers 404).
        std::vector<std::shared_ptr<CampaignJob>> done;
        for (const auto& [jid, j] : campaigns_) {
            if (j->state.load(std::memory_order_acquire) != 0) done.push_back(j);
        }
        if (done.size() > options_.max_finished_jobs) {
            std::sort(done.begin(), done.end(),
                      [](const auto& a, const auto& b) { return a->seq < b->seq; });
            done.resize(done.size() - options_.max_finished_jobs);
            for (const auto& j : done) campaigns_.erase(j->id);
            reaped = std::move(done);
        }
    }
    // The worker holds the job alive via shared_ptr and touches only the
    // job's own error_mutex — never campaigns_mutex_ — so reap/drain can
    // join it without a lock-order cycle.
    job->worker = std::thread([job, dir, spec, exec] {
        try {
            campaign::CampaignExecutor executor(dir, spec);
            const bool finished = executor.run(exec);
            job->state.store(finished ? 1 : 3, std::memory_order_release);
        } catch (const std::exception& e) {
            {
                const std::lock_guard<std::mutex> lock(job->error_mutex);
                job->error = e.what();
            }
            job->state.store(2, std::memory_order_release);
        }
    });
    if (!reaped.empty()) {
        const std::lock_guard<std::mutex> join_lock(join_mutex_);
        for (const auto& j : reaped) {
            if (j->worker.joinable()) j->worker.join();
        }
    }

    util::JsonObject o;
    o.emplace("dir", util::JsonValue(dir));
    o.emplace("id", util::JsonValue(id));
    o.emplace("state", util::JsonValue("running"));
    return HttpResponse::json(202, util::JsonValue(std::move(o)).dump() + "\n");
}

HttpResponse Service::handle_campaign_status(const std::string& id) {
    std::shared_ptr<CampaignJob> job;
    {
        const std::lock_guard<std::mutex> lock(campaigns_mutex_);
        const auto it = campaigns_.find(id);
        if (it == campaigns_.end()) {
            throw ServeError{404, "campaign_status", "unknown campaign '" + id + "'"};
        }
        job = it->second;
    }
    static const char* kStates[] = {"running", "finished", "failed", "paused"};
    const int state = job->state.load(std::memory_order_acquire);
    std::string error;
    if (state == 2) {
        const std::lock_guard<std::mutex> lock(job->error_mutex);
        error = job->error;
    }

    util::JsonObject o;
    o.emplace("dir", util::JsonValue(job->dir));
    o.emplace("id", util::JsonValue(id));
    o.emplace("state", util::JsonValue(kStates[state]));
    if (state == 2) o.emplace("error", util::JsonValue(error));
    try {
        const campaign::CampaignStatus status = campaign::read_status(job->dir);
        o.emplace("complete", util::JsonValue(status.complete()));
        o.emplace("runs", util::JsonValue(status.runs));
        o.emplace("shards_done", util::JsonValue(status.shards_done));
        o.emplace("shards_total", util::JsonValue(status.shards_total));
    } catch (const std::exception&) {
        // spec.json not written yet (job thread still starting up).
        o.emplace("complete", util::JsonValue(false));
    }
    return HttpResponse::json(200, util::JsonValue(std::move(o)).dump() + "\n");
}

HttpResponse Service::handle_campaign_events(const std::string& id) {
    std::shared_ptr<CampaignJob> job;
    {
        const std::lock_guard<std::mutex> lock(campaigns_mutex_);
        const auto it = campaigns_.find(id);
        if (it == campaigns_.end()) {
            throw ServeError{404, "campaign_events", "unknown campaign '" + id + "'"};
        }
        job = it->second;
    }

    HttpResponse r;
    r.status = 200;
    r.content_type = "text/event-stream";
    // The writer runs on the HTTP worker thread after handle() returns.
    // It owns the job via shared_ptr, so a reaped job keeps streaming
    // its terminal state; per-poll reads are bounded (64 KiB per file),
    // so a fast producer backpressures into later polls instead of an
    // unbounded send buffer.
    r.stream = [job, id](const HttpResponse::StreamSend& send,
                         const std::function<bool()>& cancelled) {
        constexpr std::size_t kMaxChunk = 64 * 1024;
        constexpr auto kPoll = std::chrono::milliseconds(100);
        static const char* kStates[] = {"running", "finished", "failed", "paused"};

        util::JsonObject hello;
        hello.emplace("dir", util::JsonValue(job->dir));
        hello.emplace("id", util::JsonValue(id));
        hello.emplace("state", util::JsonValue(
            kStates[job->state.load(std::memory_order_acquire)]));
        if (!send(sse_event("status", util::JsonValue(std::move(hello)).dump()))) {
            return;
        }

        const std::string journal = job->dir + "/events.jsonl";
        const std::string timeline = job->dir + "/timeline.jsonl";
        std::uint64_t journal_off = 0;
        std::uint64_t timeline_off = 0;
        for (;;) {
            const int state = job->state.load(std::memory_order_acquire);
            bool progressed = false;
            for (const std::string& line :
                 tail_lines(journal, &journal_off, kMaxChunk)) {
                if (!send(sse_event("campaign", line))) return;
                progressed = true;
            }
            for (const std::string& line :
                 tail_lines(timeline, &timeline_off, kMaxChunk)) {
                if (!send(sse_event("timeline", line))) return;
                progressed = true;
            }
            if (state != 0 && !progressed) break;  // terminal AND drained
            if (cancelled()) return;  // daemon draining: close mid-stream
            if (!progressed) std::this_thread::sleep_for(kPoll);
        }

        util::JsonObject done;
        done.emplace("id", util::JsonValue(id));
        done.emplace("state", util::JsonValue(
            kStates[job->state.load(std::memory_order_acquire)]));
        (void)send(sse_event("done", util::JsonValue(std::move(done)).dump()));
    };
    return r;
}

}  // namespace epea::serve
