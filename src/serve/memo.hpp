// Shard-locked memo cache for serve answers (DESIGN.md §13). The hot
// use is the per-source ReachProfile memo behind /v1/analytic/predict:
// every worker thread may ask for the same source concurrently, so the
// map is split into shards, each behind its own mutex, keyed by a
// string. Values are shared_ptr<const V>, so an entry being evicted
// while a reader still holds it is safe — eviction only drops the
// cache's reference.
//
// Eviction is a cheap LRU clock per shard: each hit stamps the entry
// with a monotonically increasing tick; when a shard outgrows its
// budget the stalest entry in that shard goes. This is deliberately
// per-shard (no global LRU order) — the point is bounding memory, not
// perfect recency.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace epea::serve {

struct MemoStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
};

template <typename V>
class ShardedMemo {
public:
    /// `max_entries_per_shard` bounds each shard independently; 0 means
    /// unbounded (tests use tiny budgets to force eviction).
    explicit ShardedMemo(std::size_t shard_count = 8,
                         std::size_t max_entries_per_shard = 1024)
        : shards_(shard_count == 0 ? 1 : shard_count),
          max_per_shard_(max_entries_per_shard) {}

    ShardedMemo(const ShardedMemo&) = delete;
    ShardedMemo& operator=(const ShardedMemo&) = delete;

    /// Looks up `key`; on miss, runs `compute` and stores the result.
    /// Returns {value, was_hit}. The compute runs under the shard lock,
    /// which is exactly what the ReachProfile memo wants: concurrent
    /// requests for the SAME source serialize (one solve), requests for
    /// different sources on different shards proceed in parallel.
    std::pair<std::shared_ptr<const V>, bool> get_or_compute(
        const std::string& key, const std::function<V()>& compute) {
        Shard& shard = shard_for(key);
        const std::lock_guard<std::mutex> lock(shard.mutex);
        const std::uint64_t now = clock_.fetch_add(1, std::memory_order_relaxed);
        auto it = shard.entries.find(key);
        if (it != shard.entries.end()) {
            it->second.last_used = now;
            hits_.fetch_add(1, std::memory_order_relaxed);
            return {it->second.value, true};
        }
        misses_.fetch_add(1, std::memory_order_relaxed);
        auto value = std::make_shared<const V>(compute());
        if (max_per_shard_ != 0 && shard.entries.size() >= max_per_shard_) {
            evict_one(shard);
        }
        shard.entries.emplace(key, Entry{value, now});
        return {value, false};
    }

    /// Lookup without compute; nullptr on miss (does not count stats).
    std::shared_ptr<const V> peek(const std::string& key) {
        Shard& shard = shard_for(key);
        const std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.entries.find(key);
        if (it == shard.entries.end()) return nullptr;
        it->second.last_used = clock_.fetch_add(1, std::memory_order_relaxed);
        return it->second.value;
    }

    /// Drops every entry (model reload invalidation).
    void clear() {
        for (Shard& shard : shards_) {
            const std::lock_guard<std::mutex> lock(shard.mutex);
            shard.entries.clear();
        }
    }

    [[nodiscard]] std::size_t size() const {
        std::size_t n = 0;
        for (const Shard& shard : shards_) {
            const std::lock_guard<std::mutex> lock(shard.mutex);
            n += shard.entries.size();
        }
        return n;
    }

    [[nodiscard]] MemoStats stats() const {
        MemoStats s;
        s.hits = hits_.load(std::memory_order_relaxed);
        s.misses = misses_.load(std::memory_order_relaxed);
        s.evictions = evictions_.load(std::memory_order_relaxed);
        return s;
    }

private:
    struct Entry {
        std::shared_ptr<const V> value;
        std::uint64_t last_used = 0;
    };
    struct Shard {
        mutable std::mutex mutex;
        std::unordered_map<std::string, Entry> entries;
    };

    Shard& shard_for(const std::string& key) {
        return shards_[std::hash<std::string>{}(key) % shards_.size()];
    }

    void evict_one(Shard& shard) {
        auto victim = shard.entries.begin();
        for (auto it = shard.entries.begin(); it != shard.entries.end(); ++it) {
            if (it->second.last_used < victim->second.last_used) victim = it;
        }
        if (victim != shard.entries.end()) {
            shard.entries.erase(victim);
            evictions_.fetch_add(1, std::memory_order_relaxed);
        }
    }

    std::vector<Shard> shards_;
    std::size_t max_per_shard_;
    std::atomic<std::uint64_t> clock_{0};
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace epea::serve
