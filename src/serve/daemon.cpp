#include "serve/daemon.hpp"

#include <csignal>
#include <cstdio>
#include <ctime>

#include <atomic>

namespace epea::serve {

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

}  // namespace

int run_daemon(const DaemonOptions& options) {
    g_stop.store(false, std::memory_order_relaxed);
    try {
        Service service(options.service);
        HttpServer server(options.server, [&service](const HttpRequest& req) {
            return service.handle(req);
        });
        server.start();

        struct sigaction sa = {};
        sa.sa_handler = on_signal;
        ::sigaction(SIGINT, &sa, nullptr);
        ::sigaction(SIGTERM, &sa, nullptr);
        // Peers that vanish mid-response must surface as EPIPE on the
        // worker's send, never as a process-killing signal.
        std::signal(SIGPIPE, SIG_IGN);

        if (options.announce) {
            std::fprintf(stderr, "epea_tool serve: listening on 127.0.0.1:%u\n",
                         static_cast<unsigned>(server.port()));
        }

        timespec nap{};
        nap.tv_nsec = 50 * 1000 * 1000;  // 50 ms signal-poll cadence
        while (!g_stop.load(std::memory_order_relaxed)) {
            ::nanosleep(&nap, nullptr);
        }

        if (options.announce) {
            std::fprintf(stderr,
                         "epea_tool serve: draining (%llu connections, %llu "
                         "requests served)\n",
                         static_cast<unsigned long long>(server.connections_accepted()),
                         static_cast<unsigned long long>(server.requests_handled()));
        }
        server.shutdown();
        service.join_campaigns();
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "serve: %s\n", e.what());
        return 1;
    }
}

}  // namespace epea::serve
