// Dependency-free HTTP/1.1 server core for `epea_tool serve` (DESIGN.md
// §13): a blocking accept loop feeding a bounded queue of connections to
// a worker thread pool. Deliberately small — exactly the subset the
// placement/analysis service needs:
//
//  - request parsing with hard limits (header block and body size are
//    length-checked *before* buffering, so a hostile peer cannot balloon
//    memory; oversized bodies answer 413, oversized heads 431);
//  - keep-alive (HTTP/1.1 default; `Connection: close` honoured), with a
//    per-connection idle timeout so parked sockets cannot pin workers;
//  - graceful drain: shutdown() stops the accept loop, lets every
//    in-flight request finish, closes the connections and joins the
//    workers — the caller then flushes observability artifacts knowing
//    no handler is still running.
//
// The parser half (parse_request_head) is a pure function over a byte
// range so tests can exercise malformed request edge cases without a
// socket in sight.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace epea::serve {

/// One parsed request. Header names are lower-cased at parse time, so
/// lookups are case-insensitive per RFC 9110.
struct HttpRequest {
    std::string method;   ///< "GET", "POST", ...
    std::string target;   ///< origin-form, e.g. "/v1/analytic/predict"
    std::string version;  ///< "HTTP/1.1"
    std::map<std::string, std::string> headers;
    std::string body;

    /// Header value by (lower-case) name, or nullptr when absent.
    [[nodiscard]] const std::string* header(const std::string& name) const;
    /// HTTP/1.1 defaults to keep-alive; "connection: close" (any case)
    /// or an HTTP/1.0 request without "keep-alive" turns it off.
    [[nodiscard]] bool keep_alive() const;
};

struct HttpResponse {
    int status = 200;
    std::string content_type = "application/json";
    std::string body;

    /// Incremental body sender for a streaming response. Returns false
    /// when the client is gone or the server is draining — the writer
    /// must stop producing then.
    using StreamSend = std::function<bool(std::string_view)>;
    /// Streaming body writer (Server-Sent Events): when set, `body` is
    /// ignored; the server sends the header block (no Content-Length,
    /// `Connection: close` — the connection end IS the framing) and then
    /// invokes the writer on the worker thread. The writer streams via
    /// `send` and must poll both `send`'s result and `cancelled()` (true
    /// once the server drains) so SIGTERM shutdown stays bounded by the
    /// writer's poll cadence.
    using StreamWriter = std::function<void(
        const StreamSend& send, const std::function<bool()>& cancelled)>;
    StreamWriter stream;

    [[nodiscard]] static HttpResponse text(int status, std::string body);
    [[nodiscard]] static HttpResponse json(int status, std::string body);
};

/// Canonical reason phrase for the status codes the service emits.
[[nodiscard]] const char* status_text(int status) noexcept;

/// Parses the request line + header block (everything before the blank
/// line, excluding the final CRLFCRLF). Returns false on malformed input
/// (bad request line, bad header syntax). The body is NOT consumed here.
[[nodiscard]] bool parse_request_head(std::string_view head, HttpRequest& out);

struct ServerOptions {
    /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (the
    /// bound port is available from HttpServer::port() after start()).
    std::uint16_t port = 8080;
    std::size_t threads = 4;          ///< worker pool size
    std::size_t max_header_bytes = 16 * 1024;
    std::size_t max_body_bytes = 4 * 1024 * 1024;
    /// Per-recv AND per-send timeout; the read loop re-checks the drain
    /// flag at this cadence, so shutdown latency is bounded by it, and a
    /// peer that stops reading cannot block a send indefinitely.
    int recv_timeout_ms = 250;
    /// Idle keep-alive connections are closed after this long; a write
    /// that makes no progress for this long is abandoned too.
    int idle_timeout_ms = 60 * 1000;
    int backlog = 64;
};

/// The application: request in, response out. Must be thread-safe — it
/// is called concurrently from every worker.
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

class HttpServer {
public:
    HttpServer(ServerOptions options, HttpHandler handler);
    ~HttpServer();

    HttpServer(const HttpServer&) = delete;
    HttpServer& operator=(const HttpServer&) = delete;

    /// Binds, listens and spawns the accept thread + worker pool. Throws
    /// std::runtime_error when the port cannot be bound. Idempotent-safe
    /// to call once only.
    void start();

    /// Port actually bound (resolves port 0 to the ephemeral choice).
    [[nodiscard]] std::uint16_t port() const noexcept { return bound_port_; }

    /// Graceful drain: stop accepting, finish in-flight requests, close
    /// all connections, join every thread. Safe to call from any thread
    /// (including a signal-watcher); subsequent calls are no-ops.
    void shutdown();

    /// Blocks until shutdown() has completed (from any caller).
    void wait();

    [[nodiscard]] bool stopping() const noexcept {
        return stopping_.load(std::memory_order_relaxed);
    }

    /// Total connections accepted / requests parsed (for tests and the
    /// bench driver; the service layer owns the real obs metrics).
    [[nodiscard]] std::uint64_t connections_accepted() const noexcept {
        return connections_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t requests_handled() const noexcept {
        return requests_.load(std::memory_order_relaxed);
    }

private:
    void accept_loop();
    void worker_loop();
    /// Serves one connection until close/error/drain. Always closes fd.
    void handle_connection(int fd);
    /// Reads one request off `fd` into `req` using `buf` as carry-over
    /// between keep-alive requests. Returns the HTTP status to respond
    /// with: 0 = got a request, -1 = connection closed/errored/timed out
    /// (no response owed), else an error status (400/413/431).
    int read_request(int fd, std::string& buf, HttpRequest& req);
    [[nodiscard]] bool write_response(int fd, const HttpResponse& resp,
                                      bool keep_alive);
    /// Sends every byte of `data`, honouring the idle budget. With
    /// `abandon_when_stopping`, gives the connection up as soon as the
    /// server drains (streaming responses must not delay shutdown).
    [[nodiscard]] bool send_all(int fd, std::string_view data,
                                bool abandon_when_stopping);
    /// Header block + HttpResponse::stream body; always closes after.
    void write_stream_response(int fd, const HttpResponse& resp);

    ServerOptions options_;
    HttpHandler handler_;
    int listen_fd_ = -1;
    std::uint16_t bound_port_ = 0;

    std::thread accept_thread_;
    std::vector<std::thread> workers_;

    std::mutex queue_mutex_;
    std::condition_variable queue_cv_;
    std::deque<int> pending_;  ///< accepted fds awaiting a worker

    std::atomic<bool> started_{false};
    std::atomic<bool> stopping_{false};
    std::mutex done_mutex_;
    std::condition_variable done_cv_;
    bool done_ = false;

    std::atomic<std::uint64_t> connections_{0};
    std::atomic<std::uint64_t> requests_{0};
};

}  // namespace epea::serve
