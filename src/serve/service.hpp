// The serve application layer (DESIGN.md §13): routes HTTP requests to
// the analytic engine, placement optimizer, linter and campaign
// executor, reusing the exact JSON reporters the CLI prints so every
// answer is byte-identical to the equivalent `epea_tool` invocation.
//
// Threading model: the HttpServer calls handle() concurrently from its
// worker pool. All shared state is either immutable after construction
// (model, matrix, a const analytic::Engine queried only through its
// pure solve()/exposure()), internally synchronized (the shard-locked
// ReachProfile memo, the single-flight table, the metrics registry), or
// serialized behind a named mutex (the ground-truth evaluator, whose
// subset_cache.json is a single on-disk artifact; the campaign job
// table). Campaign workers never take the table mutex — each job's
// mutable error string has its own mutex — so draining can join worker
// threads without holding a lock any worker might want.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "analytic/engine.hpp"
#include "campaign/spec.hpp"
#include "epic/matrix.hpp"
#include "model/system_model.hpp"
#include "serve/http.hpp"
#include "serve/memo.hpp"
#include "serve/singleflight.hpp"

namespace epea::serve {

struct ServiceOptions {
    /// Stamped into /version responses (the CLI passes EPEA_VERSION).
    std::string tool_version = "0.0.0-dev";
    /// Propagation model file (epic::load_system_text format); empty
    /// loads the built-in arrestment target.
    std::string model_path;
    /// Permeability matrix CSV; empty loads the paper's Table-1 matrix.
    std::string matrix_path;
    /// Working directory for ground-truth optimize (subset_cache.json +
    /// eval-* campaigns) and submitted campaigns; empty disables both
    /// endpoint families with a 503.
    std::string eval_dir;
    /// ReachProfile memo geometry.
    std::size_t memo_shards = 8;
    std::size_t memo_entries_per_shard = 1024;
    /// Sizing defaults for ground-truth evaluations (mirrors the CLI's
    /// EvaluatorOptions defaults; requests may override).
    std::size_t gt_cases = 25;
    std::size_t gt_times = 10;
    std::size_t gt_shards = 5;
    std::size_t gt_threads = 1;
    /// Finished/failed campaign jobs retained for status lookups; the
    /// oldest beyond this are reaped on the next submit (their on-disk
    /// checkpoints remain the durable record). Running jobs never count
    /// against the cap and are never reaped.
    std::size_t max_finished_jobs = 64;
};

/// A campaign started through POST /v1/campaign/submit, running on its
/// own thread; status is read from the campaign directory's checkpoint
/// files, so it survives daemon restarts too.
struct CampaignJob {
    std::string id;
    std::string dir;
    std::uint64_t seq = 0;  ///< submit order, for oldest-first reaping
    std::thread worker;
    std::atomic<int> state{0};  ///< 0 running, 1 finished, 2 failed, 3 paused
    /// Guards `error` only. Deliberately per-job: the worker thread
    /// takes it on failure, so it must not be the table mutex a joiner
    /// could be holding while waiting for that same worker.
    std::mutex error_mutex;
    std::string error;  ///< set (under error_mutex) before state == 2
};

class Service {
public:
    explicit Service(ServiceOptions options);
    ~Service();

    Service(const Service&) = delete;
    Service& operator=(const Service&) = delete;

    /// The HttpHandler: thread-safe, never throws (internal errors
    /// become finding-style 500 bodies).
    [[nodiscard]] HttpResponse handle(const HttpRequest& req);

    /// Blocks until every submitted campaign thread has finished
    /// (called by the daemon during graceful drain).
    void join_campaigns();

    [[nodiscard]] const model::SystemModel& system() const noexcept {
        return *system_;
    }
    [[nodiscard]] MemoStats memo_stats() const { return reach_memo_.stats(); }
    [[nodiscard]] std::uint64_t singleflight_leads() const noexcept {
        return optimize_flight_.leads();
    }
    [[nodiscard]] std::uint64_t singleflight_joins() const noexcept {
        return optimize_flight_.joins();
    }
    /// Ground-truth campaigns executed by optimize requests so far.
    [[nodiscard]] std::uint64_t campaigns_executed() const noexcept {
        return gt_campaigns_.load(std::memory_order_relaxed);
    }

    /// Drops every memoized ReachProfile (model reload invalidation).
    void invalidate_memo() { reach_memo_.clear(); }

private:
    HttpResponse handle_healthz();
    HttpResponse handle_version();
    HttpResponse handle_metrics();
    HttpResponse handle_predict(const HttpRequest& req);
    HttpResponse handle_optimize(const HttpRequest& req);
    HttpResponse handle_lint(const HttpRequest& req);
    HttpResponse handle_campaign_submit(const HttpRequest& req);
    HttpResponse handle_campaign_status(const std::string& id);
    /// GET /v1/campaign/{id}/events — Server-Sent Events stream tailing
    /// the job's events.jsonl ("campaign" events) and timeline.jsonl
    /// ("timeline" events) until the job leaves the running state, the
    /// client disconnects, or the daemon drains. See DESIGN.md §15.
    HttpResponse handle_campaign_events(const std::string& id);

    /// Memoized pure solve of `source`'s reach profile.
    [[nodiscard]] std::shared_ptr<const analytic::ReachProfile> profile(
        model::SignalId source);

    ServiceOptions options_;
    std::unique_ptr<model::SystemModel> system_;
    std::unique_ptr<epic::PermeabilityMatrix> pm_;
    std::unique_ptr<analytic::Engine> engine_;  ///< queried via solve() only

    ShardedMemo<analytic::ReachProfile> reach_memo_;
    SingleFlight<std::string> optimize_flight_;
    /// Ground-truth evaluations serialize here: subset_cache.json and
    /// the eval-* campaign directories are one shared on-disk resource.
    std::mutex gt_mutex_;
    std::atomic<std::uint64_t> gt_campaigns_{0};

    /// Guards the table itself; jobs are shared_ptr so a status reader
    /// or the reaper can keep one alive after releasing the lock.
    std::mutex campaigns_mutex_;
    /// Serializes worker joins (drain vs. the submit-time reaper —
    /// std::thread::join races with itself). Workers never take it, and
    /// it never nests with campaigns_mutex_.
    std::mutex join_mutex_;
    std::map<std::string, std::shared_ptr<CampaignJob>> campaigns_;
    std::uint64_t next_campaign_id_ = 1;
};

}  // namespace epea::serve
