#include "serve/http.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace epea::serve {

namespace {

std::string to_lower(std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return s;
}

/// Trims HTTP optional whitespace (space / htab) from both ends.
std::string_view trim_ows(std::string_view s) {
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
    return s;
}

}  // namespace

const std::string* HttpRequest::header(const std::string& name) const {
    const auto it = headers.find(to_lower(name));
    return it == headers.end() ? nullptr : &it->second;
}

bool HttpRequest::keep_alive() const {
    const std::string* conn = header("connection");
    if (version == "HTTP/1.0") {
        return conn && to_lower(*conn) == "keep-alive";
    }
    return !conn || to_lower(*conn) != "close";
}

HttpResponse HttpResponse::text(int status, std::string body) {
    HttpResponse r;
    r.status = status;
    r.content_type = "text/plain; charset=utf-8";
    r.body = std::move(body);
    return r;
}

HttpResponse HttpResponse::json(int status, std::string body) {
    HttpResponse r;
    r.status = status;
    r.body = std::move(body);
    return r;
}

const char* status_text(int status) noexcept {
    switch (status) {
        case 200: return "OK";
        case 202: return "Accepted";
        case 400: return "Bad Request";
        case 404: return "Not Found";
        case 405: return "Method Not Allowed";
        case 408: return "Request Timeout";
        case 413: return "Content Too Large";
        case 431: return "Request Header Fields Too Large";
        case 500: return "Internal Server Error";
        case 503: return "Service Unavailable";
        default:  return "Unknown";
    }
}

bool parse_request_head(std::string_view head, HttpRequest& out) {
    out = HttpRequest{};
    const std::size_t line_end = head.find("\r\n");
    const std::string_view request_line =
        line_end == std::string_view::npos ? head : head.substr(0, line_end);

    // request-line = method SP request-target SP HTTP-version
    const std::size_t sp1 = request_line.find(' ');
    if (sp1 == std::string_view::npos || sp1 == 0) return false;
    const std::size_t sp2 = request_line.find(' ', sp1 + 1);
    if (sp2 == std::string_view::npos || sp2 == sp1 + 1) return false;
    if (request_line.find(' ', sp2 + 1) != std::string_view::npos) return false;
    out.method = std::string(request_line.substr(0, sp1));
    out.target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
    out.version = std::string(request_line.substr(sp2 + 1));
    if (out.version != "HTTP/1.1" && out.version != "HTTP/1.0") return false;
    if (out.target.empty() || out.target[0] != '/') return false;

    std::size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 2;
    while (pos < head.size()) {
        std::size_t eol = head.find("\r\n", pos);
        if (eol == std::string_view::npos) eol = head.size();
        const std::string_view line = head.substr(pos, eol - pos);
        pos = eol + 2;
        if (line.empty()) continue;
        const std::size_t colon = line.find(':');
        if (colon == std::string_view::npos || colon == 0) return false;
        const std::string_view name = line.substr(0, colon);
        // Field names must not contain whitespace (obsolete line folding
        // is rejected as malformed rather than silently merged).
        if (name.find(' ') != std::string_view::npos ||
            name.find('\t') != std::string_view::npos) {
            return false;
        }
        out.headers[to_lower(std::string(name))] =
            std::string(trim_ows(line.substr(colon + 1)));
    }
    return true;
}

HttpServer::HttpServer(ServerOptions options, HttpHandler handler)
    : options_(options), handler_(std::move(handler)) {}

HttpServer::~HttpServer() { shutdown(); }

void HttpServer::start() {
    if (started_.exchange(true)) {
        throw std::logic_error("HttpServer::start called twice");
    }
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        throw std::runtime_error("serve: socket(): " +
                                 std::string(std::strerror(errno)));
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options_.port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
        const std::string err = std::strerror(errno);
        ::close(listen_fd_);
        listen_fd_ = -1;
        throw std::runtime_error("serve: cannot bind 127.0.0.1:" +
                                 std::to_string(options_.port) + ": " + err);
    }
    if (::listen(listen_fd_, options_.backlog) < 0) {
        const std::string err = std::strerror(errno);
        ::close(listen_fd_);
        listen_fd_ = -1;
        throw std::runtime_error("serve: listen(): " + err);
    }
    socklen_t len = sizeof addr;
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
        bound_port_ = ntohs(addr.sin_port);
    }

    const std::size_t n = std::max<std::size_t>(1, options_.threads);
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
    accept_thread_ = std::thread([this] { accept_loop(); });
}

void HttpServer::shutdown() {
    if (!started_.load(std::memory_order_relaxed)) return;
    if (stopping_.exchange(true)) {
        wait();
        return;
    }
    // Closing the listen socket unblocks accept() with an error; the
    // accept loop sees stopping_ and exits.
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
    queue_cv_.notify_all();
    if (accept_thread_.joinable()) accept_thread_.join();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    for (std::thread& w : workers_) {
        if (w.joinable()) w.join();
    }
    // Connections still queued but never picked up: refuse them cleanly.
    for (const int fd : pending_) ::close(fd);
    pending_.clear();
    {
        const std::lock_guard<std::mutex> lock(done_mutex_);
        done_ = true;
    }
    done_cv_.notify_all();
}

void HttpServer::wait() {
    std::unique_lock<std::mutex> lock(done_mutex_);
    done_cv_.wait(lock, [this] { return done_; });
}

void HttpServer::accept_loop() {
    while (!stopping()) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR) continue;
            if (stopping()) break;
            continue;  // transient accept failure; keep serving
        }
        connections_.fetch_add(1, std::memory_order_relaxed);
        {
            const std::lock_guard<std::mutex> lock(queue_mutex_);
            pending_.push_back(fd);
        }
        queue_cv_.notify_one();
    }
}

void HttpServer::worker_loop() {
    for (;;) {
        int fd = -1;
        {
            std::unique_lock<std::mutex> lock(queue_mutex_);
            queue_cv_.wait(lock, [this] { return stopping() || !pending_.empty(); });
            if (pending_.empty()) return;  // stopping and drained
            fd = pending_.front();
            pending_.pop_front();
        }
        handle_connection(fd);
    }
}

void HttpServer::handle_connection(int fd) {
    timeval tv{};
    tv.tv_sec = options_.recv_timeout_ms / 1000;
    tv.tv_usec = (options_.recv_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    // Sends time out at the same cadence: a peer that stops reading
    // (write-side slow-loris) must not pin this worker forever.
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    std::string buf;
    for (;;) {
        HttpRequest req;
        const int rc = read_request(fd, buf, req);
        if (rc < 0) break;  // closed / errored / drained / idle timeout
        if (rc > 0) {
            // Protocol error: answer it and close — the byte stream can
            // no longer be trusted to frame the next request.
            HttpResponse err = HttpResponse::json(
                rc, std::string("{\"errors\":1,\"findings\":[{\"artifact\":"
                                "\"serve:request\",\"message\":\"") +
                        status_text(rc) +
                        "\",\"object\":\"http\",\"rule\":\"SERVE-E" +
                        std::to_string(rc) +
                        "\",\"severity\":\"error\"}],\"warnings\":0}\n");
            (void)write_response(fd, err, false);
            break;
        }
        requests_.fetch_add(1, std::memory_order_relaxed);
        HttpResponse resp;
        try {
            resp = handler_(req);
        } catch (const std::exception& e) {
            resp = HttpResponse::json(
                500, std::string("{\"errors\":1,\"findings\":[{\"artifact\":"
                                 "\"serve:handler\",\"message\":\"") +
                         e.what() +
                         "\",\"object\":\"exception\",\"rule\":\"SERVE-E500\","
                         "\"severity\":\"error\"}],\"warnings\":0}\n");
        }
        if (resp.stream) {
            // A streamed response has no Content-Length: the connection
            // end is the framing, so it never keeps alive.
            write_stream_response(fd, resp);
            break;
        }
        const bool keep = req.keep_alive() && !stopping();
        if (!write_response(fd, resp, keep)) break;
        if (!keep) break;
    }
    ::close(fd);
}

int HttpServer::read_request(int fd, std::string& buf, HttpRequest& req) {
    // Phase 1: read until the end of the header block.
    std::size_t head_end;
    int idle_ms = 0;
    while ((head_end = buf.find("\r\n\r\n")) == std::string::npos) {
        if (buf.size() > options_.max_header_bytes) return 431;
        char chunk[4096];
        const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n == 0) return -1;  // peer closed
        if (n < 0) {
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                if (stopping()) return -1;  // draining: give the fd up
                idle_ms += options_.recv_timeout_ms;
                if (idle_ms >= options_.idle_timeout_ms) return -1;
                continue;
            }
            return -1;
        }
        idle_ms = 0;
        buf.append(chunk, static_cast<std::size_t>(n));
    }

    // A complete head can outgrow the limit within one recv, so the
    // in-loop check alone is not enough.
    if (head_end > options_.max_header_bytes) return 431;
    if (!parse_request_head(std::string_view(buf).substr(0, head_end), req)) {
        return 400;
    }

    // Phase 2: the body, length-checked BEFORE buffering.
    std::size_t content_length = 0;
    if (const std::string* cl = req.header("content-length")) {
        char* end = nullptr;
        const unsigned long long v = std::strtoull(cl->c_str(), &end, 10);
        if (end == cl->c_str() || *end != '\0') return 400;
        content_length = static_cast<std::size_t>(v);
    }
    if (req.header("transfer-encoding")) return 400;  // chunked unsupported
    if (content_length > options_.max_body_bytes) return 413;

    const std::size_t body_start = head_end + 4;
    while (buf.size() - body_start < content_length) {
        char chunk[4096];
        const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n == 0) return -1;
        if (n < 0) {
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                if (stopping()) return -1;
                idle_ms += options_.recv_timeout_ms;
                if (idle_ms >= options_.idle_timeout_ms) return -1;
                continue;
            }
            return -1;
        }
        idle_ms = 0;
        buf.append(chunk, static_cast<std::size_t>(n));
    }
    req.body = buf.substr(body_start, content_length);
    buf.erase(0, body_start + content_length);  // keep-alive carry-over
    return 0;
}

bool HttpServer::write_response(int fd, const HttpResponse& resp, bool keep_alive) {
    std::string out;
    out.reserve(resp.body.size() + 160);
    out += "HTTP/1.1 ";
    out += std::to_string(resp.status);
    out += ' ';
    out += status_text(resp.status);
    out += "\r\nContent-Type: ";
    out += resp.content_type;
    out += "\r\nContent-Length: ";
    out += std::to_string(resp.body.size());
    out += keep_alive ? "\r\nConnection: keep-alive" : "\r\nConnection: close";
    out += "\r\n\r\n";
    out += resp.body;
    // Bounded responses finish even during a drain (they are exactly the
    // in-flight work shutdown waits for); only streams abandon early.
    return send_all(fd, out, false);
}

bool HttpServer::send_all(int fd, std::string_view data,
                          bool abandon_when_stopping) {
    std::size_t sent = 0;
    int idle_ms = 0;
    while (sent < data.size()) {
        // MSG_NOSIGNAL: a peer that disconnected mid-response must fail
        // the send with EPIPE, not kill the daemon with SIGPIPE.
        const ssize_t n =
            ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                // SO_SNDTIMEO expired: the peer is not draining its
                // receive buffer. Bounded like the recv path — give the
                // connection up after the idle budget.
                if (abandon_when_stopping && stopping()) return false;
                idle_ms += options_.recv_timeout_ms;
                if (idle_ms >= options_.idle_timeout_ms) return false;
                continue;
            }
            return false;  // EPIPE/ECONNRESET: client went away
        }
        idle_ms = 0;
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

void HttpServer::write_stream_response(int fd, const HttpResponse& resp) {
    std::string head;
    head.reserve(160);
    head += "HTTP/1.1 ";
    head += std::to_string(resp.status);
    head += ' ';
    head += status_text(resp.status);
    head += "\r\nContent-Type: ";
    head += resp.content_type;
    head += "\r\nCache-Control: no-cache\r\nConnection: close\r\n\r\n";
    if (!send_all(fd, head, true)) return;
    const HttpResponse::StreamSend send = [this, fd](std::string_view data) {
        return !stopping() && send_all(fd, data, true);
    };
    const std::function<bool()> cancelled = [this] { return stopping(); };
    try {
        resp.stream(send, cancelled);
    } catch (const std::exception&) {
        // Mid-stream there is no way to signal an error to the client
        // beyond closing; the service layer logs via its own metrics.
    }
}

}  // namespace epea::serve
