#include "serve/client.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace epea::serve {

namespace {

std::string to_lower(std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return s;
}

}  // namespace

HttpClient::HttpClient(std::uint16_t port) : port_(port) {}

HttpClient::~HttpClient() { disconnect(); }

void HttpClient::disconnect() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void HttpClient::connect() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::runtime_error("client: socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port_);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
        const std::string err = std::strerror(errno);
        disconnect();
        throw std::runtime_error("client: connect 127.0.0.1:" +
                                 std::to_string(port_) + ": " + err);
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

ClientResponse HttpClient::request(const std::string& method,
                                   const std::string& target,
                                   const std::string& body) {
    for (int attempt = 0; attempt < 2; ++attempt) {
        if (fd_ < 0) connect();

        std::string out = method + " " + target + " HTTP/1.1\r\n";
        out += "Host: 127.0.0.1\r\n";
        if (!body.empty() || method == "POST") {
            out += "Content-Type: application/json\r\n";
            out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
        }
        out += "\r\n";
        out += body;

        bool io_failed = false;
        std::size_t sent = 0;
        while (sent < out.size()) {
            const ssize_t n =
                ::send(fd_, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
            if (n < 0) {
                if (errno == EINTR) continue;
                io_failed = true;
                break;
            }
            sent += static_cast<std::size_t>(n);
        }
        if (io_failed) {
            // Stale keep-alive connection the server already closed:
            // reconnect once and resend.
            disconnect();
            if (attempt == 0) continue;
            throw std::runtime_error("client: send failed");
        }

        std::string buf;
        std::size_t head_end;
        while ((head_end = buf.find("\r\n\r\n")) == std::string::npos) {
            char chunk[4096];
            const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
            if (n <= 0) {
                io_failed = true;
                break;
            }
            buf.append(chunk, static_cast<std::size_t>(n));
        }
        if (io_failed) {
            disconnect();
            if (attempt == 0) continue;
            throw std::runtime_error("client: connection closed before response");
        }

        ClientResponse resp;
        const std::string head = buf.substr(0, head_end);
        std::size_t pos = head.find("\r\n");
        const std::string status_line =
            pos == std::string::npos ? head : head.substr(0, pos);
        const std::size_t sp = status_line.find(' ');
        if (sp == std::string::npos) throw std::runtime_error("client: bad status line");
        resp.status = std::atoi(status_line.c_str() + sp + 1);
        pos = pos == std::string::npos ? head.size() : pos + 2;
        while (pos < head.size()) {
            std::size_t eol = head.find("\r\n", pos);
            if (eol == std::string::npos) eol = head.size();
            const std::string line = head.substr(pos, eol - pos);
            pos = eol + 2;
            const std::size_t colon = line.find(':');
            if (colon == std::string::npos) continue;
            std::string value = line.substr(colon + 1);
            while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
                value.erase(value.begin());
            }
            resp.headers[to_lower(line.substr(0, colon))] = value;
        }

        std::size_t content_length = 0;
        const auto cl = resp.headers.find("content-length");
        if (cl != resp.headers.end()) {
            content_length = static_cast<std::size_t>(std::strtoull(
                cl->second.c_str(), nullptr, 10));
        }
        const std::size_t body_start = head_end + 4;
        while (buf.size() - body_start < content_length) {
            char chunk[4096];
            const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
            if (n <= 0) {
                disconnect();
                throw std::runtime_error("client: connection closed mid-body");
            }
            buf.append(chunk, static_cast<std::size_t>(n));
        }
        resp.body = buf.substr(body_start, content_length);

        const auto conn = resp.headers.find("connection");
        if (conn != resp.headers.end() && to_lower(conn->second) == "close") {
            disconnect();
        }
        return resp;
    }
    throw std::runtime_error("client: request failed");  // unreachable
}

}  // namespace epea::serve
