#include "epic/matrix.hpp"

#include <stdexcept>

namespace epea::epic {

PermeabilityMatrix::PermeabilityMatrix(const model::SystemModel& system)
    : system_(&system) {
    cells_.resize(system.module_count());
    for (const model::ModuleId mid : system.all_modules()) {
        const auto& m = system.module(mid);
        cells_[mid.index()].assign(m.input_count() * m.output_count(), Cell{});
    }
}

PermeabilityMatrix::Cell& PermeabilityMatrix::cell(model::ModuleId m,
                                                   std::uint32_t in_port,
                                                   std::uint32_t out_port) {
    const auto& spec = system_->module(m);
    if (in_port >= spec.input_count() || out_port >= spec.output_count()) {
        throw std::out_of_range("PermeabilityMatrix: port out of range for " +
                                spec.name);
    }
    return cells_[m.index()][in_port * spec.output_count() + out_port];
}

const PermeabilityMatrix::Cell& PermeabilityMatrix::cell(model::ModuleId m,
                                                         std::uint32_t in_port,
                                                         std::uint32_t out_port) const {
    return const_cast<PermeabilityMatrix*>(this)->cell(m, in_port, out_port);
}

double PermeabilityMatrix::get(model::ModuleId m, std::uint32_t in_port,
                               std::uint32_t out_port) const {
    return cell(m, in_port, out_port).value;
}

void PermeabilityMatrix::set(model::ModuleId m, std::uint32_t in_port,
                             std::uint32_t out_port, double value) {
    if (value < 0.0 || value > 1.0) {
        throw std::invalid_argument("permeability must be in [0,1]");
    }
    cell(m, in_port, out_port).value = value;
}

void PermeabilityMatrix::set_counts(model::ModuleId m, std::uint32_t in_port,
                                    std::uint32_t out_port, std::uint64_t affected,
                                    std::uint64_t active) {
    Cell& c = cell(m, in_port, out_port);
    c.affected = affected;
    c.active = active;
    c.value = active > 0
                  ? static_cast<double>(affected) / static_cast<double>(active)
                  : 0.0;
}

util::Proportion PermeabilityMatrix::counts(model::ModuleId m, std::uint32_t in_port,
                                            std::uint32_t out_port) const {
    const Cell& c = cell(m, in_port, out_port);
    return util::wilson_interval(c.affected, c.active);
}

void PermeabilityMatrix::find_ports(const std::string& module_name,
                                    const std::string& in_signal,
                                    const std::string& out_signal, model::ModuleId& m,
                                    std::uint32_t& in_port,
                                    std::uint32_t& out_port) const {
    m = system_->module_id(module_name);
    const auto& spec = system_->module(m);
    const model::SignalId in_id = system_->signal_id(in_signal);
    const model::SignalId out_id = system_->signal_id(out_signal);
    bool found_in = false;
    bool found_out = false;
    for (std::uint32_t p = 0; p < spec.input_count(); ++p) {
        if (spec.inputs[p] == in_id) {
            in_port = p;
            found_in = true;
            break;
        }
    }
    for (std::uint32_t p = 0; p < spec.output_count(); ++p) {
        if (spec.outputs[p] == out_id) {
            out_port = p;
            found_out = true;
            break;
        }
    }
    if (!found_in || !found_out) {
        throw std::invalid_argument("no pair (" + in_signal + " -> " + out_signal +
                                    ") on module " + module_name);
    }
}

double PermeabilityMatrix::get(const std::string& module_name,
                               const std::string& in_signal,
                               const std::string& out_signal) const {
    model::ModuleId m;
    std::uint32_t in_port = 0;
    std::uint32_t out_port = 0;
    find_ports(module_name, in_signal, out_signal, m, in_port, out_port);
    return get(m, in_port, out_port);
}

void PermeabilityMatrix::set(const std::string& module_name,
                             const std::string& in_signal,
                             const std::string& out_signal, double value) {
    model::ModuleId m;
    std::uint32_t in_port = 0;
    std::uint32_t out_port = 0;
    find_ports(module_name, in_signal, out_signal, m, in_port, out_port);
    set(m, in_port, out_port, value);
}

void PermeabilityMatrix::set_counts(const std::string& module_name,
                                    const std::string& in_signal,
                                    const std::string& out_signal,
                                    std::uint64_t affected, std::uint64_t active) {
    model::ModuleId m;
    std::uint32_t in_port = 0;
    std::uint32_t out_port = 0;
    find_ports(module_name, in_signal, out_signal, m, in_port, out_port);
    set_counts(m, in_port, out_port, affected, active);
}

std::vector<PairEntry> PermeabilityMatrix::entries() const {
    std::vector<PairEntry> out;
    out.reserve(pair_count());
    for (const model::ModuleId mid : system_->all_modules()) {
        const auto& spec = system_->module(mid);
        for (std::uint32_t k = 0; k < spec.output_count(); ++k) {
            for (std::uint32_t i = 0; i < spec.input_count(); ++i) {
                const Cell& c = cell(mid, i, k);
                out.push_back(PairEntry{mid, i, k, spec.inputs[i], spec.outputs[k],
                                        c.value, c.affected, c.active});
            }
        }
    }
    return out;
}

std::size_t PermeabilityMatrix::pair_count() const noexcept {
    return system_->pair_count();
}

}  // namespace epea::epic
