// PermeabilityEstimator — estimates the permeability matrix by fault
// injection exactly as §5.3 describes: golden run per test case, one
// single-bit error per injection run targeting one module input, golden
// run comparison stopping at the first difference, and direct-error
// attribution.
#pragma once

#include <functional>

#include "epic/matrix.hpp"
#include "fi/comparison.hpp"
#include "fi/fastpath.hpp"
#include "fi/injector.hpp"
#include "runtime/simulator.hpp"

namespace epea::epic {

struct EstimatorOptions {
    /// Injection moments per (input port, bit), stratified-randomly
    /// spread over the golden run of each test case.
    std::size_t times_per_bit = 10;
    /// Hard cap on any single run.
    runtime::Tick max_ticks = 20000;
    /// Seed for the stratified injection-time draws. The per-case stream
    /// is derived from (seed, case_index_offset + case), so splitting a
    /// campaign across workers reproduces the sequential results exactly.
    std::uint64_t seed = 0x7ab1e1ULL;
    std::size_t case_index_offset = 0;
    /// Ablations (defaults reproduce the paper's method):
    /// - direct_attribution: apply the §5.3 "direct errors only" rule;
    ///   when off, any output first-difference counts.
    bool direct_attribution = true;
    /// - stratified_times: stratified-random injection moments; when off,
    ///   stratum midpoints are used (exposes alignment artifacts between
    ///   injection times and run-fraction-locked events).
    bool stratified_times = true;
    /// Fast path (DESIGN.md §9): fork injection runs from golden boundary
    /// snapshots and prune on state re-convergence. Bit-identical results;
    /// disable to use the slow path as the reference oracle.
    bool use_fastpath = true;
    /// Batched execution (DESIGN.md §14): route the one-shot injection
    /// plans of a case through the SoA batch kernel, advancing lanes in
    /// lockstep. Requires the fast path; bit-identical results.
    bool use_batch = true;
    /// Lanes per lockstep batch; 0 picks the auto width.
    std::size_t batch_width = 0;
    /// Shared golden-run cache (campaign executors pass theirs so golden
    /// data is captured once per case); null uses a private per-call cache.
    fi::GoldenCache* golden_cache = nullptr;
    /// Delta campaigns: when non-empty, only the named modules are
    /// injected. The stratified time draws of skipped modules are still
    /// consumed from the per-case stream, so the filtered run's results
    /// for the measured modules are bit-identical to the same modules'
    /// rows in an unfiltered run — the splice guarantee of the delta
    /// planner (DESIGN.md §12). Unknown names are ignored.
    std::vector<std::string> module_filter;
};

/// Progress callback: (runs completed, total runs planned).
using EstimatorProgress = std::function<void(std::size_t, std::size_t)>;

class PermeabilityEstimator {
public:
    /// The injector must already be installed on `sim`.
    PermeabilityEstimator(runtime::Simulator& sim, fi::Injector& injector)
        : sim_(&sim), injector_(&injector) {}

    /// Runs the full campaign: for each test case (configure_case(c) must
    /// prepare the system; the estimator resets and runs), every module
    /// input port is injected with every bit at times_per_bit moments.
    /// Returns the estimated matrix with per-pair counts.
    [[nodiscard]] PermeabilityMatrix estimate(
        std::size_t case_count, const std::function<void(std::size_t)>& configure_case,
        const EstimatorOptions& options = {}, const EstimatorProgress& progress = {});

    /// Total injection runs executed by the last estimate() call.
    [[nodiscard]] std::size_t runs_executed() const noexcept { return runs_; }

    /// Fast-path counters of the last estimate() call.
    [[nodiscard]] const fi::FastPathStats& fastpath_stats() const noexcept {
        return fastpath_;
    }

private:
    runtime::Simulator* sim_;
    fi::Injector* injector_;
    std::size_t runs_ = 0;
    fi::FastPathStats fastpath_;
};

}  // namespace epea::epic
