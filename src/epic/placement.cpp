#include "epic/placement.hpp"

#include <algorithm>

namespace epea::epic {

namespace {

/// True when every input pair of `s`'s producer with permeability above
/// epsilon carries a signal in `selected`.
bool covered_upstream(const PermeabilityMatrix& pm, model::SignalId s,
                      const std::vector<model::SignalId>& selected) {
    const auto producer = pm.system().producer_of(s);
    if (!producer.has_value()) return false;
    const auto& spec = pm.system().module(producer->module);
    bool any_permeable = false;
    for (std::uint32_t i = 0; i < spec.input_count(); ++i) {
        if (pm.get(producer->module, i, producer->port) <= 1e-12) continue;
        any_permeable = true;
        if (std::find(selected.begin(), selected.end(), spec.inputs[i]) ==
            selected.end()) {
            return false;
        }
    }
    return any_permeable;
}

/// Largest permeability into `s` across its producer's inputs.
double max_incoming_permeability(const PermeabilityMatrix& pm, model::SignalId s) {
    const auto producer = pm.system().producer_of(s);
    if (!producer.has_value()) return 0.0;
    const auto& spec = pm.system().module(producer->module);
    double best = 0.0;
    for (std::uint32_t i = 0; i < spec.input_count(); ++i) {
        best = std::max(best, pm.get(producer->module, i, producer->port));
    }
    return best;
}

}  // namespace

std::vector<PlacementDecision> pa_placement(const PermeabilityMatrix& pm,
                                            const PaOptions& options) {
    const auto& system = pm.system();
    std::vector<PlacementDecision> report;
    report.reserve(system.signal_count());

    // First pass: R1 with vetoes.
    for (const model::SignalId s : system.all_signals()) {
        PlacementDecision d;
        d.signal = s;
        d.exposure = signal_exposure(pm, s);
        const auto& spec = system.signal(s);
        if (spec.role == model::SignalRole::kSystemInput) {
            d.motivation = "System input (raw sensor register, not an EA location)";
        } else if (options.veto_boolean && spec.kind == model::SignalKind::kBoolean) {
            d.motivation = "Selected EA's not geared at boolean values";
        } else if (!d.exposure.has_value() || *d.exposure <= 1e-12) {
            d.motivation = "Zero error exposure";
        } else if (*d.exposure < options.exposure_threshold) {
            d.motivation = "Low error exposure";
        } else if (spec.role == model::SignalRole::kIntermediate &&
                   system.consumers_of(s).empty()) {
            d.motivation =
                "High exposure but consumed outside the analysed software; "
                "errors cannot propagate onward";
        } else {
            d.selected = true;
            d.motivation = "High error exposure";
        }
        report.push_back(std::move(d));
    }

    // Second pass: drop system outputs fully covered by guarded inputs.
    const auto current = selected_signals(report);
    for (PlacementDecision& d : report) {
        if (!d.selected) continue;
        if (system.signal(d.signal).role != model::SignalRole::kSystemOutput) continue;
        if (covered_upstream(pm, d.signal, current)) {
            d.selected = false;
            d.motivation = "Errors here most likely come from the guarded upstream signal";
        }
    }
    return report;
}

std::vector<PlacementDecision> extended_placement(const PermeabilityMatrix& pm,
                                                  std::vector<OutputCriticality> outputs,
                                                  const ExtendedOptions& options) {
    const auto& system = pm.system();
    if (outputs.empty()) {
        for (const model::SignalId o :
             system.signals_with_role(model::SignalRole::kSystemOutput)) {
            outputs.push_back(OutputCriticality{o, 1.0});
        }
    }

    std::vector<PlacementDecision> report = pa_placement(pm, options.pa);
    for (PlacementDecision& d : report) {
        const auto& spec = system.signal(d.signal);
        const bool is_output_sink =
            std::any_of(outputs.begin(), outputs.end(),
                        [&](const OutputCriticality& oc) { return oc.output == d.signal; });
        if (!is_output_sink) {
            d.impact = criticality(pm, d.signal, outputs);
        }
        if (d.selected) continue;
        if (spec.role == model::SignalRole::kSystemInput) continue;
        if (options.pa.veto_boolean && spec.kind == model::SignalKind::kBoolean) {
            continue;  // boolean veto also applies to R3
        }
        if (d.impact.has_value() && *d.impact >= options.impact_threshold) {
            d.selected = true;
            d.motivation = "High impact on system output despite low exposure (R3)";
            continue;
        }
        if (options.internal_error_model &&
            max_incoming_permeability(pm, d.signal) >= options.perfect_permeability) {
            d.selected = true;
            d.motivation =
                "Perfect incoming permeability; error model reaches internal memory";
        }
    }
    return report;
}

std::vector<model::SignalId> selected_signals(
    const std::vector<PlacementDecision>& report) {
    std::vector<model::SignalId> out;
    for (const auto& d : report) {
        if (d.selected) out.push_back(d.signal);
    }
    return out;
}

std::vector<model::SignalId> ea_candidate_signals(const model::SystemModel& system,
                                                  bool veto_boolean) {
    std::vector<model::SignalId> out;
    for (const model::SignalId s : system.all_signals()) {
        const auto& spec = system.signal(s);
        if (spec.role == model::SignalRole::kSystemInput) continue;
        if (veto_boolean && spec.kind == model::SignalKind::kBoolean) continue;
        out.push_back(s);
    }
    return out;
}

std::vector<std::string> arrestment_eh_signal_names() {
    // §5.1: selected by the four-step experience/heuristic process before
    // the propagation framework existed.
    return {"SetValue", "IsValue", "i", "pulscnt", "ms_slot_nbr", "mscnt", "OutValue"};
}

}  // namespace epea::epic
