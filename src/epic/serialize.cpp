#include "epic/serialize.hpp"

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/csv.hpp"

namespace epea::epic {

namespace {

std::vector<std::string> split(const std::string& line, char sep) {
    std::vector<std::string> out;
    std::string cell;
    std::istringstream stream(line);
    while (std::getline(stream, cell, sep)) out.push_back(cell);
    return out;
}

[[noreturn]] void malformed(const std::string& what, const std::string& line) {
    throw std::invalid_argument("serialize: " + what + ": '" + line + "'");
}

model::SignalRole parse_role(const std::string& text, const std::string& line) {
    if (text == "input") return model::SignalRole::kSystemInput;
    if (text == "intermediate") return model::SignalRole::kIntermediate;
    if (text == "output") return model::SignalRole::kSystemOutput;
    malformed("unknown signal role", line);
}

model::SignalKind parse_kind(const std::string& text, const std::string& line) {
    if (text == "continuous") return model::SignalKind::kContinuous;
    if (text == "monotonic") return model::SignalKind::kMonotonic;
    if (text == "discrete") return model::SignalKind::kDiscrete;
    if (text == "boolean") return model::SignalKind::kBoolean;
    malformed("unknown signal kind", line);
}

}  // namespace

void save_matrix_csv(std::ostream& out, const PermeabilityMatrix& pm) {
    util::CsvWriter csv(out);
    csv.row({"module", "in_signal", "out_signal", "value", "affected", "active"});
    const auto& system = pm.system();
    for (const auto& e : pm.entries()) {
        csv.cell(system.module_name(e.module))
            .cell(system.signal_name(e.in_signal))
            .cell(system.signal_name(e.out_signal))
            .cell(e.value, 9)
            .cell(static_cast<std::uint64_t>(e.affected))
            .cell(static_cast<std::uint64_t>(e.active));
        csv.end_row();
    }
}

PermeabilityMatrix load_matrix_csv(std::istream& in, const model::SystemModel& system) {
    PermeabilityMatrix pm(system);
    std::string line;
    bool header_skipped = false;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        if (!header_skipped) {
            header_skipped = true;
            if (line.rfind("module,", 0) == 0) continue;  // header row
        }
        const auto cells = split(line, ',');
        if (cells.size() != 6) malformed("expected 6 columns", line);
        try {
            const std::uint64_t affected = std::stoull(cells[4]);
            const std::uint64_t active = std::stoull(cells[5]);
            if (active > 0) {
                pm.set_counts(cells[0], cells[1], cells[2], affected, active);
            } else {
                pm.set(cells[0], cells[1], cells[2], std::stod(cells[3]));
            }
        } catch (const std::invalid_argument&) {
            throw;
        } catch (const std::exception&) {
            malformed("bad numeric field", line);
        }
    }
    return pm;
}

void save_system_text(std::ostream& out, const model::SystemModel& system) {
    for (const auto sid : system.all_signals()) {
        const auto& spec = system.signal(sid);
        out << "signal " << spec.name << ' ' << to_string(spec.role) << ' '
            << to_string(spec.kind) << ' ' << static_cast<unsigned>(spec.width)
            << '\n';
    }
    for (const auto mid : system.all_modules()) {
        const auto& spec = system.module(mid);
        out << "module " << spec.name << " in";
        for (const auto in : spec.inputs) out << ' ' << system.signal_name(in);
        out << " out";
        for (const auto o : spec.outputs) out << ' ' << system.signal_name(o);
        out << '\n';
    }
}

model::SystemModel load_system_text(std::istream& in) {
    model::SystemModel system;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#') continue;
        std::istringstream stream(line);
        std::string keyword;
        stream >> keyword;
        if (keyword == "signal") {
            std::string name;
            std::string role;
            std::string kind;
            unsigned width = 0;
            if (!(stream >> name >> role >> kind >> width)) {
                malformed("bad signal line", line);
            }
            system.add_signal({name, parse_role(role, line), parse_kind(kind, line),
                               static_cast<std::uint8_t>(width)});
        } else if (keyword == "module") {
            std::string name;
            std::string token;
            if (!(stream >> name >> token) || token != "in") {
                malformed("bad module line", line);
            }
            model::ModuleSpec spec;
            spec.name = name;
            // Only the first "out" token is the section keyword, so
            // signals may be named "out" (but not appear in the *input*
            // list under that name — a documented format limitation).
            bool in_outputs = false;
            while (stream >> token) {
                if (!in_outputs && token == "out") {
                    in_outputs = true;
                    continue;
                }
                (in_outputs ? spec.outputs : spec.inputs)
                    .push_back(system.signal_id(token));
            }
            if (spec.outputs.empty()) malformed("module without outputs", line);
            system.add_module(std::move(spec));
        } else {
            malformed("unknown keyword", line);
        }
    }
    system.validate_or_throw();
    return system;
}

}  // namespace epea::epic
