// Serialization of analysis artifacts:
//  - permeability matrices as CSV (with estimation counts), so expensive
//    fault-injection campaigns can be persisted and re-analysed without
//    re-running;
//  - system models as a simple line-oriented text format, so profiles can
//    be exchanged with external tooling.
#pragma once

#include <istream>
#include <ostream>

#include "epic/matrix.hpp"
#include "model/system_model.hpp"

namespace epea::epic {

/// Writes the matrix as CSV: one row per input/output pair with columns
/// module,in_signal,out_signal,value,affected,active.
void save_matrix_csv(std::ostream& out, const PermeabilityMatrix& pm);

/// Reads a matrix previously written by save_matrix_csv. Every row must
/// name an existing pair of `system`; missing pairs stay zero. Throws
/// std::invalid_argument on malformed rows or unknown names.
[[nodiscard]] PermeabilityMatrix load_matrix_csv(std::istream& in,
                                                 const model::SystemModel& system);

/// Writes the system structure in a line-oriented format:
///   signal <name> <role> <kind> <width>
///   module <name> in <sig>... out <sig>...
void save_system_text(std::ostream& out, const model::SystemModel& system);

/// Reads a system written by save_system_text. Throws on malformed input.
[[nodiscard]] model::SystemModel load_system_text(std::istream& in);

}  // namespace epea::epic
