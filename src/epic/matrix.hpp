// PermeabilityMatrix — the error permeability P^M[i,k] of every module
// input/output pair (Eq. 1 of the paper; Table 1 holds the target's 25
// values). The matrix is the single input to all downstream analysis:
// exposure, trees, impact, criticality and placement.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/system_model.hpp"
#include "util/stats.hpp"

namespace epea::epic {

/// One input/output pair entry in Table-1 order.
struct PairEntry {
    model::ModuleId module;
    std::uint32_t in_port = 0;   // 0-based
    std::uint32_t out_port = 0;  // 0-based
    model::SignalId in_signal;
    model::SignalId out_signal;
    double value = 0.0;
    /// Estimation counts when the matrix came from fault injection
    /// (0/0 for analytically set matrices).
    std::uint64_t affected = 0;
    std::uint64_t active = 0;
};

class PermeabilityMatrix {
public:
    explicit PermeabilityMatrix(const model::SystemModel& system);

    [[nodiscard]] const model::SystemModel& system() const noexcept { return *system_; }

    [[nodiscard]] double get(model::ModuleId m, std::uint32_t in_port,
                             std::uint32_t out_port) const;
    void set(model::ModuleId m, std::uint32_t in_port, std::uint32_t out_port,
             double value);

    /// Estimation-count interface (value = affected / active).
    void set_counts(model::ModuleId m, std::uint32_t in_port, std::uint32_t out_port,
                    std::uint64_t affected, std::uint64_t active);
    [[nodiscard]] util::Proportion counts(model::ModuleId m, std::uint32_t in_port,
                                          std::uint32_t out_port) const;

    /// Name-based convenience (throws on unknown names/ports).
    [[nodiscard]] double get(const std::string& module_name,
                             const std::string& in_signal,
                             const std::string& out_signal) const;
    void set(const std::string& module_name, const std::string& in_signal,
             const std::string& out_signal, double value);
    void set_counts(const std::string& module_name, const std::string& in_signal,
                    const std::string& out_signal, std::uint64_t affected,
                    std::uint64_t active);

    /// All pairs in the paper's Table-1 order: modules in declaration
    /// order, outputs outer, inputs inner.
    [[nodiscard]] std::vector<PairEntry> entries() const;

    /// Number of pairs (25 for the arrestment target).
    [[nodiscard]] std::size_t pair_count() const noexcept;

private:
    struct Cell {
        double value = 0.0;
        std::uint64_t affected = 0;
        std::uint64_t active = 0;
    };

    [[nodiscard]] Cell& cell(model::ModuleId m, std::uint32_t in_port,
                             std::uint32_t out_port);
    [[nodiscard]] const Cell& cell(model::ModuleId m, std::uint32_t in_port,
                                   std::uint32_t out_port) const;
    void find_ports(const std::string& module_name, const std::string& in_signal,
                    const std::string& out_signal, model::ModuleId& m,
                    std::uint32_t& in_port, std::uint32_t& out_port) const;

    const model::SystemModel* system_;
    // per module: in_port-major storage [in * n_out + out]
    std::vector<std::vector<Cell>> cells_;
};

}  // namespace epea::epic
