#include "epic/estimator.hpp"

#include "obs/trace.hpp"

#include "fi/batch.hpp"
#include "fi/golden.hpp"
#include "util/rng.hpp"

namespace epea::epic {

PermeabilityMatrix PermeabilityEstimator::estimate(
    std::size_t case_count, const std::function<void(std::size_t)>& configure_case,
    const EstimatorOptions& options, const EstimatorProgress& progress) {
    const model::SystemModel& system = sim_->system();

    // counts[module][in * n_out + out]
    struct Count {
        std::uint64_t affected = 0;
        std::uint64_t active = 0;
    };
    std::vector<std::vector<Count>> counts(system.module_count());
    for (const model::ModuleId mid : system.all_modules()) {
        counts[mid.index()].assign(system.module(mid).pair_count(), Count{});
    }

    // Module filter (delta campaigns): skipped modules execute no runs
    // but still consume their stratified time draws below, keeping the
    // per-case stream aligned with an unfiltered run.
    std::vector<bool> included(system.module_count(), true);
    if (!options.module_filter.empty()) {
        included.assign(system.module_count(), false);
        for (const std::string& name : options.module_filter) {
            if (auto mid = system.find_module(name)) included[mid->index()] = true;
        }
    }

    // Plan size for progress reporting (filtered modules plan no runs).
    std::size_t total_bits = 0;
    for (const model::ModuleId mid : system.all_modules()) {
        if (!included[mid.index()]) continue;
        for (const model::SignalId in : system.module(mid).inputs) {
            total_bits += system.signal(in).width;
        }
    }
    const std::size_t total_runs = case_count * total_bits * options.times_per_bit;

    fi::GoldenCache local_cache;
    fi::GoldenCache* cache = options.golden_cache ? options.golden_cache : &local_cache;
    fi::InjectionRunner runner(*sim_, *injector_);
    runner.set_enabled(options.use_fastpath);
    fi::BatchRunner batch(*sim_);
    batch.set_mode(fi::BatchRunner::Mode::kPermeability);
    batch.set_width(options.batch_width);

    // Attribution seals, one per (module, injected port): the tally
    // below reads only the module's output first-diffs and — under
    // direct attribution — the other-input contamination minimum, so a
    // lane can retire as soon as those facts are decided (BatchRunner
    // SealRule semantics). The contamination witnesses are sound only
    // for direct attribution; the any-output-diff ablation keeps
    // waiting for output diffs that may still arrive.
    std::vector<std::vector<std::uint32_t>> seals(system.module_count());
    for (const model::ModuleId mid : system.all_modules()) {
        const auto& spec = system.module(mid);
        seals[mid.index()].resize(spec.input_count());
        for (std::uint32_t port = 0; port < spec.input_count(); ++port) {
            fi::BatchRunner::SealRule rule;
            if (options.direct_attribution) {
                for (std::uint32_t p = 0; p < spec.input_count(); ++p) {
                    if (p != port) rule.any_of.push_back(spec.inputs[p]);
                }
            }
            rule.all_of = spec.outputs;
            seals[mid.index()][port] = batch.add_seal_rule(std::move(rule));
        }
    }

    // Tally record for the batched path: outcomes are consumed strictly
    // in submission order, reproducing the scalar accumulation order.
    struct Tally {
        model::ModuleId mid;
        std::uint32_t port = 0;
        std::size_t ticket = 0;
    };
    std::vector<Tally> tallies;

    runs_ = 0;
    fastpath_ = {};
    for (std::size_t c = 0; c < case_count; ++c) {
        obs::Span case_span("epic.case", options.case_index_offset + c);
        std::uint64_t stream = options.seed + options.case_index_offset + c;
        util::Rng time_rng(util::splitmix64(stream));
        configure_case(c);
        injector_->disarm();
        // Golden run from the shared cache; with the fast path on, the
        // entry also carries per-tick boundary snapshots ("perm" context:
        // no monitors armed during permeability estimation).
        const bool fast = options.use_fastpath && sim_->snapshot_supported();
        const std::size_t case_key = options.case_index_offset + c;
        const auto golden = cache->get_or_capture(
            fi::golden_key(fast ? "perm" : "trace", case_key),
            [&] { return fi::capture_golden_data(*sim_, options.max_ticks, fast); },
            &fastpath_);
        runner.set_golden(fast ? golden : nullptr);
        batch.set_golden(fast ? golden : nullptr);
        const fi::GoldenRun& gr = golden->run;

        // Batched execution: phase 1 submits every plan of the case (the
        // stratified time draws happen in the identical order), phase 2
        // runs them as lockstep lane batches, phase 3 tallies outcomes in
        // submission order — bit-identical to the scalar loop.
        const bool batched = options.use_batch && fast && batch.ready(options.max_ticks);
        batch.clear();
        tallies.clear();

        for (const model::ModuleId mid : system.all_modules()) {
            const auto& spec = system.module(mid);
            for (std::uint32_t port = 0; port < spec.input_count(); ++port) {
                const unsigned width = system.signal(spec.inputs[port]).width;
                for (unsigned bit = 0; bit < width; ++bit) {
                    const auto ticks = fi::spread_ticks(
                        0, gr.length, options.times_per_bit,
                        options.stratified_times ? &time_rng : nullptr);
                    if (!included[mid.index()]) continue;  // draws consumed above
                    for (const runtime::Tick t : ticks) {
                        if (batched) {
                            tallies.push_back(
                                {mid, port,
                                 batch.submit(
                                     fi::Injection::into_module_input(mid, port, bit, t),
                                     seals[mid.index()][port])});
                            continue;
                        }
                        runner.run({fi::Injection::into_module_input(mid, port, bit, t)},
                                   options.max_ticks);
                        ++runs_;
                        if (progress) progress(runs_, total_runs);
                        if (injector_->fired_count() == 0) continue;  // inactive

                        const fi::DirectOutcome outcome = fi::attribute_direct(
                            system, gr, *sim_->trace(), mid, port);
                        for (std::uint32_t k = 0; k < spec.output_count(); ++k) {
                            Count& cnt =
                                counts[mid.index()][port * spec.output_count() + k];
                            ++cnt.active;
                            const bool hit =
                                options.direct_attribution
                                    ? outcome.affected[k]
                                    : outcome.first_diff[k] != runtime::kInvalidTick;
                            if (hit) ++cnt.affected;
                        }
                    }
                }
            }
        }

        if (batched) {
            batch.flush();
            for (const Tally& tl : tallies) {
                ++runs_;
                if (progress) progress(runs_, total_runs);
                const fi::BatchOutcome& oc = batch.outcome(tl.ticket);
                if (!oc.fired) continue;  // inactive

                const auto& spec = system.module(tl.mid);
                const fi::DirectOutcome outcome = fi::attribute_direct_from_first_diff(
                    system, tl.mid, tl.port, oc.first_diff);
                for (std::uint32_t k = 0; k < spec.output_count(); ++k) {
                    Count& cnt =
                        counts[tl.mid.index()][tl.port * spec.output_count() + k];
                    ++cnt.active;
                    const bool hit = options.direct_attribution
                                         ? outcome.affected[k]
                                         : outcome.first_diff[k] != runtime::kInvalidTick;
                    if (hit) ++cnt.affected;
                }
            }
        }
    }
    injector_->disarm();
    fastpath_.merge(runner.stats());
    fastpath_.merge(batch.stats());

    PermeabilityMatrix pm(system);
    for (const model::ModuleId mid : system.all_modules()) {
        const auto& spec = system.module(mid);
        for (std::uint32_t port = 0; port < spec.input_count(); ++port) {
            for (std::uint32_t k = 0; k < spec.output_count(); ++k) {
                const Count& cnt = counts[mid.index()][port * spec.output_count() + k];
                pm.set_counts(mid, port, k, cnt.affected, cnt.active);
            }
        }
    }
    return pm;
}

}  // namespace epea::epic
