// Propagation-path enumeration and the paper's tree structures:
//   - trace trees (TT):     system input  -> ... -> outputs   (§5.2)
//   - backtrack trees (BT): system output <- ... <- inputs    (§5.2)
//   - impact trees:         any signal    -> ... -> outputs   (§8, Fig 4)
// All three are path enumerations over the non-zero permeability edges of
// a module graph. A path never revisits a signal (verified against the
// paper: the i -> i self-loop is excluded from impact(i), Table 5).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "epic/matrix.hpp"

namespace epea::epic {

/// One traversal of a module: error enters `from` on `in_port`, leaves as
/// `to` on `out_port`, attenuated by `permeability`.
struct PropEdge {
    model::ModuleId module;
    std::uint32_t in_port = 0;
    std::uint32_t out_port = 0;
    model::SignalId from;
    model::SignalId to;
    double permeability = 0.0;
};

/// A propagation path; `weight` is the product of edge permeabilities
/// (the w_i of Eq. 2).
struct PropPath {
    std::vector<PropEdge> edges;

    [[nodiscard]] double weight() const noexcept {
        double w = 1.0;
        for (const auto& e : edges) w *= e.permeability;
        return w;
    }

    /// Signal at the end of the path (for forward paths) — the leaf.
    [[nodiscard]] model::SignalId terminal() const {
        return edges.empty() ? model::SignalId{} : edges.back().to;
    }

    /// Signal at the start of the path — the root.
    [[nodiscard]] model::SignalId origin() const {
        return edges.empty() ? model::SignalId{} : edges.front().from;
    }
};

struct TreeOptions {
    double epsilon = 1e-12;        ///< edges with P <= epsilon are pruned
    std::size_t max_paths = 1'000'000;  ///< explosion guard (throws beyond)
};

/// All maximal forward propagation paths from `source` (the impact tree
/// of `source`, and the trace tree when `source` is a system input).
/// Leaves are signals with no expandable outgoing edge (system outputs,
/// dead ends, or signals already on the path).
[[nodiscard]] std::vector<PropPath> forward_paths(const PermeabilityMatrix& pm,
                                                  model::SignalId source,
                                                  const TreeOptions& options = {});

/// All maximal backward propagation paths ending at `sink` (the backtrack
/// tree of `sink`). Edges are returned in forward orientation, ordered
/// from the path's origin towards `sink`.
[[nodiscard]] std::vector<PropPath> backward_paths(const PermeabilityMatrix& pm,
                                                   model::SignalId sink,
                                                   const TreeOptions& options = {});

/// Human-readable rendering of a path, e.g.
///   "pulscnt -[P^CALC(3,1)=0.494]-> i -[...]-> TOC2  (w=0.021)".
/// Ports are rendered 1-based to match the paper's notation.
[[nodiscard]] std::string format_path(const model::SystemModel& system,
                                      const PropPath& path, int precision = 3);

/// ASCII tree rendering of a set of paths sharing a root (impact tree /
/// trace tree when forward, backtrack tree when the paths came from
/// backward_paths with `root_at_end` = true).
[[nodiscard]] std::string render_tree(const model::SystemModel& system,
                                      const std::vector<PropPath>& paths,
                                      bool root_at_end = false);

}  // namespace epea::epic
