// Profile export — the graphical exposure/impact profiles of Figs 5 & 6:
// per-signal values classified into bands and rendered as DOT graphs with
// line thickness proportional to the value (dashed = zero, dash-dotted =
// no value assigned).
#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "epic/matrix.hpp"

namespace epea::epic {

enum class Band : std::uint8_t { kHighest, kHigh, kLow, kZero, kUnassigned };

[[nodiscard]] constexpr const char* to_string(Band b) noexcept {
    switch (b) {
        case Band::kHighest: return "highest";
        case Band::kHigh: return "high";
        case Band::kLow: return "low";
        case Band::kZero: return "zero";
        case Band::kUnassigned: return "unassigned";
    }
    return "?";
}

struct ProfileEntry {
    model::SignalId signal;
    std::optional<double> value;
    Band band = Band::kUnassigned;
};

/// Classifies per-signal values into bands relative to the maximum:
/// zero (<= eps), low (< 1/3 max), high (< 2/3 max), highest (rest);
/// signals without a value are unassigned.
[[nodiscard]] std::vector<ProfileEntry> classify_profile(
    const model::SystemModel& system,
    const std::vector<std::pair<model::SignalId, std::optional<double>>>& values);

/// Writes a Fig-5/6-style DOT profile: the system graph with per-signal
/// edge thickness scaled by `values`.
void write_profile_dot(
    std::ostream& out, const model::SystemModel& system,
    const std::vector<std::pair<model::SignalId, std::optional<double>>>& values,
    const std::string& graph_name);

}  // namespace epea::epic
