#include "epic/profile.hpp"

#include <algorithm>

#include "model/dot.hpp"

namespace epea::epic {

std::vector<ProfileEntry> classify_profile(
    const model::SystemModel& system,
    const std::vector<std::pair<model::SignalId, std::optional<double>>>& values) {
    double max_value = 0.0;
    for (const auto& [sid, v] : values) {
        if (v.has_value()) max_value = std::max(max_value, *v);
    }
    std::vector<ProfileEntry> entries;
    entries.reserve(values.size());
    for (const auto& [sid, v] : values) {
        ProfileEntry e;
        e.signal = sid;
        e.value = v;
        if (!v.has_value()) {
            e.band = Band::kUnassigned;
        } else if (*v <= 1e-12) {
            e.band = Band::kZero;
        } else if (max_value <= 0.0 || *v < max_value / 3.0) {
            e.band = Band::kLow;
        } else if (*v < 2.0 * max_value / 3.0) {
            e.band = Band::kHigh;
        } else {
            e.band = Band::kHighest;
        }
        (void)system;
        entries.push_back(e);
    }
    return entries;
}

void write_profile_dot(
    std::ostream& out, const model::SystemModel& system,
    const std::vector<std::pair<model::SignalId, std::optional<double>>>& values,
    const std::string& graph_name) {
    model::DotOptions options;
    options.graph_name = graph_name;
    options.signal_weight = [&values](model::SignalId sid) -> std::optional<double> {
        for (const auto& [id, v] : values) {
            if (id == sid) return v;
        }
        return std::nullopt;
    };
    model::write_dot(out, system, options);
}

}  // namespace epea::epic
