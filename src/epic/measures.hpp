// Propagation measures derived from the permeability matrix (paper §5.2,
// following DSN 2001 [9]):
//   - relative permeability P^M (and non-weighted P̂^M) per module,
//   - error exposure X^M (and non-weighted X̂^M) per module,
//   - signal error exposure X_s per signal (Table 2).
//
// These are relative profiling measures, not probabilities; they order
// modules/signals by how exposed/permeable they are (paper: "do not
// necessarily reflect probabilities").
#pragma once

#include <optional>
#include <vector>

#include "epic/matrix.hpp"

namespace epea::epic {

/// P^M: mean permeability over the module's input/output pairs, in [0,1].
[[nodiscard]] double relative_permeability(const PermeabilityMatrix& pm,
                                           model::ModuleId m);

/// P̂^M: sum of permeabilities over the module's input/output pairs.
[[nodiscard]] double relative_permeability_unweighted(const PermeabilityMatrix& pm,
                                                      model::ModuleId m);

/// X_s(S): signal error exposure — the sum of the producing module's
/// permeabilities into this output. System inputs have no producer and
/// therefore no exposure value (nullopt), matching Table 5 where input
/// signals carry no X_s.
[[nodiscard]] std::optional<double> signal_exposure(const PermeabilityMatrix& pm,
                                                    model::SignalId s);

/// X̂^M: module error exposure (non-weighted) — the sum of the signal
/// exposures of the module's input signals (system inputs contribute 0).
[[nodiscard]] double module_exposure_unweighted(const PermeabilityMatrix& pm,
                                                model::ModuleId m);

/// X^M: module error exposure normalised by the module's input count.
[[nodiscard]] double module_exposure(const PermeabilityMatrix& pm, model::ModuleId m);

/// One row of the Table-2 exposure profile.
struct ExposureRow {
    model::SignalId signal;
    std::optional<double> exposure;  ///< nullopt for system inputs
};

/// Exposure of every signal, sorted by descending exposure (signals
/// without a value last, in id order).
[[nodiscard]] std::vector<ExposureRow> exposure_profile(const PermeabilityMatrix& pm);

}  // namespace epea::epic
