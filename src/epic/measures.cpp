#include "epic/measures.hpp"

#include <algorithm>

namespace epea::epic {

double relative_permeability_unweighted(const PermeabilityMatrix& pm,
                                        model::ModuleId m) {
    const auto& spec = pm.system().module(m);
    double sum = 0.0;
    for (std::uint32_t i = 0; i < spec.input_count(); ++i) {
        for (std::uint32_t k = 0; k < spec.output_count(); ++k) {
            sum += pm.get(m, i, k);
        }
    }
    return sum;
}

double relative_permeability(const PermeabilityMatrix& pm, model::ModuleId m) {
    const auto& spec = pm.system().module(m);
    const auto pairs = static_cast<double>(spec.pair_count());
    return pairs > 0.0 ? relative_permeability_unweighted(pm, m) / pairs : 0.0;
}

std::optional<double> signal_exposure(const PermeabilityMatrix& pm, model::SignalId s) {
    const auto producer = pm.system().producer_of(s);
    if (!producer.has_value()) return std::nullopt;
    const auto& spec = pm.system().module(producer->module);
    double sum = 0.0;
    for (std::uint32_t i = 0; i < spec.input_count(); ++i) {
        sum += pm.get(producer->module, i, producer->port);
    }
    return sum;
}

double module_exposure_unweighted(const PermeabilityMatrix& pm, model::ModuleId m) {
    const auto& spec = pm.system().module(m);
    double sum = 0.0;
    for (const model::SignalId in : spec.inputs) {
        sum += signal_exposure(pm, in).value_or(0.0);
    }
    return sum;
}

double module_exposure(const PermeabilityMatrix& pm, model::ModuleId m) {
    const auto& spec = pm.system().module(m);
    const auto n = static_cast<double>(spec.input_count());
    return n > 0.0 ? module_exposure_unweighted(pm, m) / n : 0.0;
}

std::vector<ExposureRow> exposure_profile(const PermeabilityMatrix& pm) {
    std::vector<ExposureRow> rows;
    for (const model::SignalId s : pm.system().all_signals()) {
        rows.push_back(ExposureRow{s, signal_exposure(pm, s)});
    }
    std::stable_sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
        if (a.exposure.has_value() != b.exposure.has_value()) {
            return a.exposure.has_value();
        }
        if (!a.exposure.has_value()) return false;
        return *a.exposure > *b.exposure;
    });
    return rows;
}

}  // namespace epea::epic
