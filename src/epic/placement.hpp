// EDM placement policies:
//   - pa_placement: the paper's PA-approach (§5.3) — propagation analysis
//     only, rule R1 on signal error exposure plus the practical vetoes
//     documented in Table 2.
//   - extended_placement: the §10 extension — additionally applies rule
//     R3 (impact/criticality) and, for error models that reach internal
//     memory, re-admits perfectly-permeable dead-end signals.
//   - arrestment_eh_set: the experience/heuristic (EH) baseline of §5.1.
//     The EH selection is an *input* to the paper (it predates the
//     framework), so it is encoded as data, not derived.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "epic/impact.hpp"
#include "epic/matrix.hpp"
#include "epic/measures.hpp"

namespace epea::epic {

/// One row of a placement report (mirrors Table 2 / §10).
struct PlacementDecision {
    model::SignalId signal;
    bool selected = false;
    std::optional<double> exposure;  ///< X_s (nullopt for system inputs)
    std::optional<double> impact;    ///< only filled by extended_placement
    std::string motivation;
};

struct PaOptions {
    /// R1: signals with X_s at or above this are EA candidates. The gap
    /// between the paper's selected (>= 0.875) and rejected (<= 0.010)
    /// exposures is wide, so any threshold in between is robust.
    double exposure_threshold = 0.5;
    /// The paper's EAs cannot check boolean signals (Table 2 motivation
    /// for slow_speed).
    bool veto_boolean = true;
};

/// Propagation-analysis placement (PA-approach). Applies, in order:
///  1. system inputs are not EA locations (raw sensor registers);
///  2. boolean signals are vetoed (no boolean EA);
///  3. zero/low exposure signals are rejected (R1);
///  4. dead-end intermediates (no module consumes them) are rejected —
///     errors there cannot propagate further through the software;
///  5. system outputs whose producing module's permeable inputs are all
///     already-selected signals are rejected (errors there "most likely
///     come from" the guarded upstream signal — Table 2 on TOC2).
[[nodiscard]] std::vector<PlacementDecision> pa_placement(const PermeabilityMatrix& pm,
                                                          const PaOptions& options = {});

struct ExtendedOptions {
    PaOptions pa;
    /// R3: signals whose impact on any (criticality-weighted) output
    /// reaches this threshold are added even when exposure is low.
    double impact_threshold = 0.15;
    /// §10: when the assumed error model introduces errors in the entire
    /// memory space (not only system inputs), signals with a
    /// perfectly-permeable incoming pair are re-admitted even if they are
    /// dead ends (ms_slot_nbr in the paper).
    bool internal_error_model = true;
    double perfect_permeability = 0.999;
};

/// Extended placement (§10): PA placement plus effect analysis. When
/// `outputs` is empty, every system output with criticality 1.0 is used
/// (the single-output case where criticality reduces to impact).
[[nodiscard]] std::vector<PlacementDecision> extended_placement(
    const PermeabilityMatrix& pm, std::vector<OutputCriticality> outputs = {},
    const ExtendedOptions& options = {});

/// Signals selected by a placement report.
[[nodiscard]] std::vector<model::SignalId> selected_signals(
    const std::vector<PlacementDecision>& report);

/// The paper's EH-approach selection for the arrestment target (§5.1):
/// SetValue, IsValue, i, pulscnt, ms_slot_nbr, mscnt, OutValue.
[[nodiscard]] std::vector<std::string> arrestment_eh_signal_names();

/// The full pool of signals that could host an EA at all — every signal
/// that survives the structural vetoes of pa_placement (not a raw system
/// input, not boolean when the veto is on), regardless of its exposure.
/// This is the search space of the placement optimizer (src/opt/): the
/// threshold rules above pick one point from it, the optimizer explores
/// the whole subset lattice.
[[nodiscard]] std::vector<model::SignalId> ea_candidate_signals(
    const model::SystemModel& system, bool veto_boolean = true);

}  // namespace epea::epic
