#include "epic/paths.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <stdexcept>

namespace epea::epic {

namespace {

struct ForwardWalker {
    const PermeabilityMatrix& pm;
    const model::SystemModel& system;
    const TreeOptions& options;
    std::vector<PropPath>& out;
    std::vector<PropEdge> current;
    std::vector<bool> on_path;

    void walk(model::SignalId cur) {
        on_path[cur.index()] = true;
        bool expanded = false;
        for (const model::PortRef& consumer : system.consumers_of(cur)) {
            const auto& spec = system.module(consumer.module);
            for (std::uint32_t k = 0; k < spec.output_count(); ++k) {
                const double p = pm.get(consumer.module, consumer.port, k);
                if (p <= options.epsilon) continue;
                const model::SignalId next = spec.outputs[k];
                if (on_path[next.index()]) continue;  // no signal revisits
                expanded = true;
                current.push_back(
                    PropEdge{consumer.module, consumer.port, k, cur, next, p});
                walk(next);
                current.pop_back();
            }
        }
        if (!expanded && !current.empty()) {
            if (out.size() >= options.max_paths) {
                throw std::runtime_error("forward_paths: path explosion (max_paths)");
            }
            out.push_back(PropPath{current});
        }
        on_path[cur.index()] = false;
    }
};

struct BackwardWalker {
    const PermeabilityMatrix& pm;
    const model::SystemModel& system;
    const TreeOptions& options;
    std::vector<PropPath>& out;
    std::vector<PropEdge> current;  // collected sink-to-origin, reversed at emit
    std::vector<bool> on_path;

    void walk(model::SignalId cur) {
        on_path[cur.index()] = true;
        bool expanded = false;
        const auto producer = system.producer_of(cur);
        if (producer.has_value()) {
            const auto& spec = system.module(producer->module);
            for (std::uint32_t i = 0; i < spec.input_count(); ++i) {
                const double p = pm.get(producer->module, i, producer->port);
                if (p <= options.epsilon) continue;
                const model::SignalId prev = spec.inputs[i];
                if (on_path[prev.index()]) continue;
                expanded = true;
                current.push_back(
                    PropEdge{producer->module, i, producer->port, prev, cur, p});
                walk(prev);
                current.pop_back();
            }
        }
        if (!expanded && !current.empty()) {
            if (out.size() >= options.max_paths) {
                throw std::runtime_error("backward_paths: path explosion (max_paths)");
            }
            PropPath path{current};
            std::reverse(path.edges.begin(), path.edges.end());
            out.push_back(std::move(path));
        }
        on_path[cur.index()] = false;
    }
};

std::string permeability_label(const model::SystemModel& system, const PropEdge& e,
                               int precision) {
    char buf[160];
    std::snprintf(buf, sizeof buf, "P^%s(%u,%u)=%.*f",
                  system.module_name(e.module).c_str(), e.in_port + 1, e.out_port + 1,
                  precision, e.permeability);
    return buf;
}

}  // namespace

std::vector<PropPath> forward_paths(const PermeabilityMatrix& pm,
                                    model::SignalId source,
                                    const TreeOptions& options) {
    std::vector<PropPath> out;
    ForwardWalker walker{pm, pm.system(), options, out, {},
                         std::vector<bool>(pm.system().signal_count(), false)};
    walker.walk(source);
    return out;
}

std::vector<PropPath> backward_paths(const PermeabilityMatrix& pm, model::SignalId sink,
                                     const TreeOptions& options) {
    std::vector<PropPath> out;
    BackwardWalker walker{pm, pm.system(), options, out, {},
                          std::vector<bool>(pm.system().signal_count(), false)};
    walker.walk(sink);
    return out;
}

std::string format_path(const model::SystemModel& system, const PropPath& path,
                        int precision) {
    if (path.edges.empty()) return "(empty path)";
    std::string s = system.signal_name(path.edges.front().from);
    for (const auto& e : path.edges) {
        s += " -[" + permeability_label(system, e, precision) + "]-> " +
             system.signal_name(e.to);
    }
    char buf[48];
    std::snprintf(buf, sizeof buf, "  (w=%.*f)", precision, path.weight());
    s += buf;
    return s;
}

namespace {

struct TrieNode {
    PropEdge edge;
    std::vector<std::unique_ptr<TrieNode>> children;
};

bool same_edge(const PropEdge& a, const PropEdge& b) {
    return a.module == b.module && a.in_port == b.in_port && a.out_port == b.out_port &&
           a.from == b.from && a.to == b.to;
}

void insert_path(TrieNode& root, const PropPath& path, bool reversed) {
    TrieNode* node = &root;
    const auto n = path.edges.size();
    for (std::size_t step = 0; step < n; ++step) {
        const PropEdge& e = path.edges[reversed ? n - 1 - step : step];
        TrieNode* child = nullptr;
        for (auto& c : node->children) {
            if (same_edge(c->edge, e)) {
                child = c.get();
                break;
            }
        }
        if (child == nullptr) {
            node->children.push_back(std::make_unique<TrieNode>());
            child = node->children.back().get();
            child->edge = e;
        }
        node = child;
    }
}

void render_node(const model::SystemModel& system, const TrieNode& node,
                 const std::string& prefix, bool reversed, std::string& out) {
    for (std::size_t c = 0; c < node.children.size(); ++c) {
        const bool last = c + 1 == node.children.size();
        const TrieNode& child = *node.children[c];
        const model::SignalId shown =
            reversed ? child.edge.from : child.edge.to;
        out += prefix;
        out += last ? "`-" : "|-";
        out += "[" + permeability_label(system, child.edge, 3) + "]- " +
               system.signal_name(shown) + "\n";
        render_node(system, child, prefix + (last ? "   " : "|  "), reversed, out);
    }
}

}  // namespace

std::string render_tree(const model::SystemModel& system,
                        const std::vector<PropPath>& paths, bool root_at_end) {
    if (paths.empty()) return "(no propagation paths)\n";
    TrieNode root;
    for (const auto& p : paths) insert_path(root, p, root_at_end);
    const model::SignalId root_signal =
        root_at_end ? paths.front().terminal() : paths.front().origin();
    std::string out = system.signal_name(root_signal) + "\n";
    render_node(system, root, "", root_at_end, out);
    return out;
}

}  // namespace epea::epic
