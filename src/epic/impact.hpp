// Effect analysis — the paper's §8 extension: impact (Eq. 2) and
// criticality (Eqs. 3-4).
//
//   impact(Ss -> So)  = 1 - Π_paths (1 - w_path)
//   C(s,i)            = C_{o,i} * impact(Ss -> So_i)
//   C(s)              = 1 - Π_i (1 - C(s,i))
//
// Impact is a relative ranking measure (independence across paths rarely
// holds); criticality additionally folds in designer-assigned output
// criticalities and only matters for systems with multiple outputs.
#pragma once

#include <optional>
#include <vector>

#include "epic/paths.hpp"

namespace epea::epic {

/// Impact of errors in `source` on system output `sink` (Eq. 2).
/// Returns 0 when no propagation path exists. `source == sink` is the
/// degenerate case the paper footnotes as "impact 1.0".
[[nodiscard]] double impact(const PermeabilityMatrix& pm, model::SignalId source,
                            model::SignalId sink, const TreeOptions& options = {});

/// One row of the Table-5 impact profile.
struct ImpactRow {
    model::SignalId signal;
    /// nullopt for the sink itself (no impact value is assigned to the
    /// system output signal in Table 5).
    std::optional<double> impact;
};

/// Impact of every signal on `sink`, in signal-id order.
[[nodiscard]] std::vector<ImpactRow> impact_profile(const PermeabilityMatrix& pm,
                                                    model::SignalId sink,
                                                    const TreeOptions& options = {});

/// A designer-assigned output criticality C_{o,i} in [0,1] (§8).
struct OutputCriticality {
    model::SignalId output;
    double criticality = 1.0;
};

/// Per-output criticality C(s,i) of `source` (Eq. 3).
[[nodiscard]] double criticality_wrt(const PermeabilityMatrix& pm,
                                     model::SignalId source,
                                     const OutputCriticality& output,
                                     const TreeOptions& options = {});

/// Total criticality C(s) of `source` over all outputs (Eq. 4).
[[nodiscard]] double criticality(const PermeabilityMatrix& pm, model::SignalId source,
                                 const std::vector<OutputCriticality>& outputs,
                                 const TreeOptions& options = {});

}  // namespace epea::epic
