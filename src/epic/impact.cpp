#include "epic/impact.hpp"

#include <algorithm>
#include <stdexcept>

namespace epea::epic {

double impact(const PermeabilityMatrix& pm, model::SignalId source,
              model::SignalId sink, const TreeOptions& options) {
    if (source == sink) return 1.0;
    const auto paths = forward_paths(pm, source, options);
    double survive = 1.0;
    for (const PropPath& path : paths) {
        // The impact tree's relevant leaves are those at the sink; other
        // leaves (dead ends, other outputs) do not contribute to this
        // pairwise impact.
        if (path.terminal() != sink) continue;
        survive *= 1.0 - path.weight();
    }
    return 1.0 - survive;
}

std::vector<ImpactRow> impact_profile(const PermeabilityMatrix& pm,
                                      model::SignalId sink,
                                      const TreeOptions& options) {
    std::vector<ImpactRow> rows;
    rows.reserve(pm.system().signal_count());
    for (const model::SignalId s : pm.system().all_signals()) {
        if (s == sink) {
            rows.push_back(ImpactRow{s, std::nullopt});
        } else {
            rows.push_back(ImpactRow{s, impact(pm, s, sink, options)});
        }
    }
    return rows;
}

double criticality_wrt(const PermeabilityMatrix& pm, model::SignalId source,
                       const OutputCriticality& output, const TreeOptions& options) {
    if (output.criticality < 0.0 || output.criticality > 1.0) {
        throw std::invalid_argument("output criticality must be in [0,1]");
    }
    return output.criticality * impact(pm, source, output.output, options);
}

double criticality(const PermeabilityMatrix& pm, model::SignalId source,
                   const std::vector<OutputCriticality>& outputs,
                   const TreeOptions& options) {
    double survive = 1.0;
    for (const OutputCriticality& oc : outputs) {
        survive *= 1.0 - criticality_wrt(pm, source, oc, options);
    }
    return 1.0 - survive;
}

}  // namespace epea::epic
