// Synthetic system generation — three kinds of test substrate:
//
//  1. random_layered_system: random acyclic layered module graphs with a
//     random permeability matrix. Used for property tests of the
//     analysis measures and for scaling benchmarks of the tree/impact
//     algorithms (the paper argues the framework's black-box scalability;
//     these graphs exercise it beyond the 6-module target).
//
//  2. BitmaskChainSystem: a runtime-backed chain of mask modules whose
//     TRUE permeability is known analytically (out = in & mask, so
//     P = popcount(effective mask)/width under uniform single-bit
//     flips). Used to validate the fault-injection estimator end to end.
//
//  3. make_multi_output_system: a small two-output system (actuator +
//     diagnostics) exercising the criticality measure, which the paper's
//     single-output target cannot (§8).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "epic/matrix.hpp"
#include "model/system_model.hpp"
#include "runtime/environment.hpp"
#include "runtime/simulator.hpp"
#include "util/rng.hpp"

namespace epea::synth {

// ---------------------------------------------------------- random graphs

struct LayeredOptions {
    std::size_t layers = 4;
    std::size_t modules_per_layer = 3;
    std::size_t inputs_per_module = 2;   ///< fan-in from the previous layer
    std::size_t outputs_per_module = 2;
    /// Probability that an input/output pair has non-zero permeability.
    double edge_density = 0.6;
    /// Probability that an input port rewires to an intermediate of a
    /// *later* layer, creating a feedback cycle (0 keeps the classic
    /// acyclic corpus, bit-identical to earlier versions).
    double cycle_density = 0.0;
    std::uint64_t seed = 1;
};

/// The model is heap-allocated because the matrix holds a reference to
/// it — moving a SyntheticSystem must not invalidate that reference.
struct SyntheticSystem {
    std::unique_ptr<model::SystemModel> system;
    epic::PermeabilityMatrix matrix;
};

/// Generates a random layered system: layer 0 consumes system inputs,
/// the last layer produces system outputs, every other signal is an
/// intermediate consumed by the next layer. Acyclic by construction.
[[nodiscard]] SyntheticSystem random_layered_system(const LayeredOptions& options);

// ------------------------------------------------------ ground-truth chain

/// A chain of `length` single-input/single-output modules where module k
/// computes out = in & mask[k]. The true permeability of module k is
/// popcount(mask[k] & 0xffff) / 16 under uniform single-bit input flips
/// (given an input source that keeps all bits live).
class BitmaskChainSystem {
public:
    BitmaskChainSystem(std::vector<std::uint16_t> masks, runtime::Tick run_ticks = 512);

    BitmaskChainSystem(const BitmaskChainSystem&) = delete;
    BitmaskChainSystem& operator=(const BitmaskChainSystem&) = delete;

    [[nodiscard]] const model::SystemModel& system() const noexcept { return *model_; }
    [[nodiscard]] runtime::Simulator& sim() noexcept { return *sim_; }
    [[nodiscard]] double true_permeability(std::size_t k) const;

private:
    class Source;
    std::vector<std::uint16_t> masks_;
    std::unique_ptr<model::SystemModel> model_;
    std::unique_ptr<runtime::Environment> env_;
    std::unique_ptr<runtime::Simulator> sim_;
};

// ------------------------------------------------------------ multi-output

/// A two-output controller (actuator_cmd + diag_word) with a hand-set
/// permeability matrix, for criticality tests: the same sensor impact
/// yields different criticalities once outputs are weighted.
[[nodiscard]] SyntheticSystem make_multi_output_system();

}  // namespace epea::synth
