#include "synth/generator.hpp"

#include <bit>
#include <stdexcept>
#include <string>

#include "model/builder.hpp"

namespace epea::synth {

SyntheticSystem random_layered_system(const LayeredOptions& options) {
    if (options.layers == 0 || options.modules_per_layer == 0 ||
        options.inputs_per_module == 0 || options.outputs_per_module == 0) {
        throw std::invalid_argument("random_layered_system: empty dimensions");
    }
    util::Rng rng(options.seed);
    auto system_ptr = std::make_unique<model::SystemModel>();
    model::SystemModel& system = *system_ptr;

    // Layer-boundary signals: boundary[l] feeds layer l's modules.
    std::vector<std::vector<model::SignalId>> boundary(options.layers + 1);

    const std::size_t first_width = options.modules_per_layer * options.inputs_per_module;
    for (std::size_t s = 0; s < first_width; ++s) {
        boundary[0].push_back(system.add_signal(model::SignalSpec{
            "in_" + std::to_string(s), model::SignalRole::kSystemInput,
            model::SignalKind::kContinuous, 16}));
    }
    for (std::size_t l = 1; l <= options.layers; ++l) {
        const bool last = l == options.layers;
        const std::size_t width = options.modules_per_layer * options.outputs_per_module;
        for (std::size_t s = 0; s < width; ++s) {
            const std::string name = (last ? "out_" : "sig_" + std::to_string(l) + "_") +
                                     std::to_string(s);
            boundary[l].push_back(system.add_signal(model::SignalSpec{
                name,
                last ? model::SignalRole::kSystemOutput
                     : model::SignalRole::kIntermediate,
                model::SignalKind::kContinuous, 16}));
        }
    }

    for (std::size_t l = 0; l < options.layers; ++l) {
        // Feedback pool: intermediates of *later* boundaries (the output
        // boundary stays environment-consumed). Rewiring an input here
        // creates a cycle through this layer.
        std::vector<model::SignalId> cycle_pool;
        if (options.cycle_density > 0.0) {
            for (std::size_t j = l + 1; j < options.layers; ++j) {
                cycle_pool.insert(cycle_pool.end(), boundary[j].begin(),
                                  boundary[j].end());
            }
        }
        for (std::size_t m = 0; m < options.modules_per_layer; ++m) {
            model::ModuleSpec spec;
            spec.name = "M" + std::to_string(l) + "_" + std::to_string(m);
            // Inputs: drawn from the previous boundary; ensure distinct
            // ports can share signals (fan-out), but give each module a
            // deterministic base slice plus random extras. With
            // cycle_density > 0 a port may rewire to a later-layer
            // intermediate instead; all draws depend only on the options,
            // so a given (seed, shape) is bit-reproducible.
            for (std::size_t p = 0; p < options.inputs_per_module; ++p) {
                const auto& pool = boundary[l];
                model::SignalId chosen = pool[rng.below(pool.size())];
                if (!cycle_pool.empty() && rng.chance(options.cycle_density)) {
                    chosen = cycle_pool[rng.below(cycle_pool.size())];
                }
                spec.inputs.push_back(chosen);
            }
            for (std::size_t p = 0; p < options.outputs_per_module; ++p) {
                spec.outputs.push_back(
                    boundary[l + 1][m * options.outputs_per_module + p]);
            }
            system.add_module(std::move(spec));
        }
    }
    system.validate_or_throw();

    epic::PermeabilityMatrix matrix(system);
    for (const model::ModuleId mid : system.all_modules()) {
        const auto& spec = system.module(mid);
        for (std::uint32_t i = 0; i < spec.input_count(); ++i) {
            for (std::uint32_t k = 0; k < spec.output_count(); ++k) {
                const double p =
                    rng.chance(options.edge_density) ? rng.uniform(0.05, 1.0) : 0.0;
                matrix.set(mid, i, k, p);
            }
        }
    }
    return SyntheticSystem{std::move(system_ptr), std::move(matrix)};
}

// ------------------------------------------------------ BitmaskChainSystem

namespace {

/// Module behaviour: out = in & mask (stateless).
class MaskModule final : public runtime::ModuleBehaviour {
public:
    explicit MaskModule(std::uint16_t mask) : mask_(mask) {}
    void reset() override {}
    void step(runtime::ModuleContext& ctx) override {
        ctx.out(0, ctx.in(0) & mask_);
    }

private:
    std::uint16_t mask_;
};

model::SystemModel make_chain_model(std::size_t length) {
    model::SystemBuilder b;
    b.input("src", model::SignalKind::kContinuous, 16);
    for (std::size_t k = 0; k + 1 < length; ++k) {
        b.intermediate("link_" + std::to_string(k), model::SignalKind::kContinuous, 16);
    }
    b.output("sink", model::SignalKind::kContinuous, 16);
    for (std::size_t k = 0; k < length; ++k) {
        const std::string in =
            k == 0 ? "src" : "link_" + std::to_string(k - 1);
        const std::string out =
            k + 1 == length ? "sink" : "link_" + std::to_string(k);
        b.module("mask_" + std::to_string(k)).in(in).out(out);
    }
    return b.build();
}

}  // namespace

/// Environment: drives the source signal with a full-period 16-bit LCG so
/// all bits toggle, and finishes after a fixed number of ticks.
class BitmaskChainSystem::Source final : public runtime::Environment {
public:
    Source(model::SignalId src, runtime::Tick run_ticks)
        : src_(src), run_ticks_(run_ticks) {}

    void reset() override {
        state_ = 0x1234;
        ticks_ = 0;
    }
    void sense(runtime::SignalStore& store, runtime::Tick) override {
        state_ = static_cast<std::uint16_t>(state_ * 25173U + 13849U);
        store.set(src_, state_);
        ++ticks_;
    }
    void actuate(const runtime::SignalStore&, runtime::Tick) override {}
    [[nodiscard]] bool finished() const override { return ticks_ >= run_ticks_; }

private:
    model::SignalId src_;
    runtime::Tick run_ticks_;
    std::uint16_t state_ = 0;
    runtime::Tick ticks_ = 0;
};

BitmaskChainSystem::BitmaskChainSystem(std::vector<std::uint16_t> masks,
                                       runtime::Tick run_ticks)
    : masks_(std::move(masks)) {
    if (masks_.empty()) throw std::invalid_argument("BitmaskChainSystem: empty chain");
    model_ = std::make_unique<model::SystemModel>(make_chain_model(masks_.size()));
    std::vector<std::unique_ptr<runtime::ModuleBehaviour>> behaviours;
    behaviours.reserve(masks_.size());
    for (const std::uint16_t mask : masks_) {
        behaviours.push_back(std::make_unique<MaskModule>(mask));
    }
    env_ = std::make_unique<Source>(model_->signal_id("src"), run_ticks);
    sim_ = std::make_unique<runtime::Simulator>(*model_, std::move(behaviours), *env_);
}

double BitmaskChainSystem::true_permeability(std::size_t k) const {
    return static_cast<double>(std::popcount(masks_.at(k))) / 16.0;
}

// ---------------------------------------------------------- multi-output

SyntheticSystem make_multi_output_system() {
    model::SystemBuilder b;
    b.input("sensor_a", model::SignalKind::kContinuous, 16);
    b.input("sensor_b", model::SignalKind::kContinuous, 16);
    b.intermediate("filtered", model::SignalKind::kContinuous, 16);
    b.intermediate("estimate", model::SignalKind::kContinuous, 16);
    b.output("actuator_cmd", model::SignalKind::kContinuous, 16);
    b.output("diag_word", model::SignalKind::kDiscrete, 8);

    b.module("FILTER").in("sensor_a").in("sensor_b").out("filtered");
    b.module("ESTIMATOR").in("filtered").out("estimate");
    b.module("CONTROL").in("estimate").out("actuator_cmd").out("diag_word");

    auto system = std::make_unique<model::SystemModel>(b.build());
    epic::PermeabilityMatrix matrix(*system);
    matrix.set("FILTER", "sensor_a", "filtered", 0.8);
    matrix.set("FILTER", "sensor_b", "filtered", 0.4);
    matrix.set("ESTIMATOR", "filtered", "estimate", 0.9);
    matrix.set("CONTROL", "estimate", "actuator_cmd", 0.7);
    matrix.set("CONTROL", "estimate", "diag_word", 0.95);
    return SyntheticSystem{std::move(system), std::move(matrix)};
}

}  // namespace epea::synth
