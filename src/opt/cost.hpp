// The cost half of the placement-optimization problem. Every EA location
// carries a two-dimensional cost — memory (ROM + RAM bytes, the Table-3
// resource data) and execution time (worst-case comparisons per tick) —
// and a placement's cost is the sum over its locations. Budgets bound
// the subset search per dimension.
#pragma once

#include <limits>
#include <map>
#include <string>
#include <vector>

#include "model/system_model.hpp"

namespace epea::opt {

/// Cost of one EA location (or a whole placement) in both dimensions.
struct PlacementCost {
    double memory = 0.0;  ///< ROM + RAM bytes (Table 3)
    double time = 0.0;    ///< worst-case comparisons per tick

    /// Scalar used where a single ordering is needed (greedy density,
    /// reports). Bytes and comparisons are deliberately weighted 1:1 —
    /// both dimensions are small integers of comparable magnitude per EA.
    [[nodiscard]] double total() const noexcept { return memory + time; }

    friend PlacementCost operator+(PlacementCost a, PlacementCost b) noexcept {
        return PlacementCost{a.memory + b.memory, a.time + b.time};
    }
};

/// Per-dimension upper bounds; default is unbounded.
struct CostBudget {
    double memory = std::numeric_limits<double>::infinity();
    double time = std::numeric_limits<double>::infinity();

    [[nodiscard]] bool admits(const PlacementCost& cost) const noexcept {
        return cost.memory <= memory && cost.time <= time;
    }
};

/// Signal-name -> cost table.
class CostModel {
public:
    void set(const std::string& signal, PlacementCost cost);
    /// Throws std::out_of_range for signals without a cost entry.
    [[nodiscard]] PlacementCost of(const std::string& signal) const;
    [[nodiscard]] bool has(const std::string& signal) const;
    [[nodiscard]] PlacementCost subset_cost(const std::vector<std::string>& signals) const;
    [[nodiscard]] std::size_t size() const noexcept { return costs_.size(); }

    /// Costs derived from the declared signal kinds: an EA guarding a
    /// continuous/monotonic/discrete signal is of the corresponding EA
    /// type, whose footprint (ea::cost_of) and check count
    /// (ea::check_cycles_of) are fixed — placement cost depends on the
    /// location's type, not on the calibrated parameters. Boolean signals
    /// are skipped (no boolean EA exists).
    [[nodiscard]] static CostModel from_signal_kinds(
        const model::SystemModel& system, const std::vector<model::SignalId>& signals);

private:
    std::map<std::string, PlacementCost> costs_;
};

}  // namespace epea::opt
