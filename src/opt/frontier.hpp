// Pareto-frontier enumeration over coverage (maximize), memory and
// execution time (minimize). For small candidate counts the full subset
// lattice is enumerated and every non-dominated point marked; reference
// placements (the paper's EH/PA/§10-extended sets) are labelled so the
// paper's cost-effectiveness claims can be read directly off the
// frontier. Export formats: CSV, JSON and Graphviz .dot (plotted
// alongside fig5/fig6).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "opt/search.hpp"

namespace epea::opt {

struct FrontierPoint {
    /// Non-empty for labelled reference placements ("EH-set", ...).
    std::string label;
    std::vector<std::string> signals;
    double coverage = 0.0;
    PlacementCost cost;
    bool on_frontier = false;
};

/// True when `a` is at least as good as `b` in all three objectives and
/// strictly better in at least one.
[[nodiscard]] bool dominates(const FrontierPoint& a, const FrontierPoint& b);

/// Sets on_frontier on every non-dominated point.
void mark_frontier(std::vector<FrontierPoint>& points);

/// How far below the frontier `p` sits: the best coverage achieved by any
/// frontier point that costs no more than `p` (both dimensions), minus
/// p's coverage. <= 0 means no cheaper-or-equal point covers more; a
/// small positive slack means "near the frontier" (the tolerance the
/// validation applies to the paper's EH/PA sets).
[[nodiscard]] double coverage_slack(const std::vector<FrontierPoint>& points,
                                    const FrontierPoint& p);

struct Frontier {
    std::vector<FrontierPoint> points;

    /// The non-dominated points, sorted by ascending memory cost.
    [[nodiscard]] std::vector<FrontierPoint> frontier_points() const;
};

/// Enumerates every non-empty subset of `candidates` (2^n - 1 points;
/// throws std::invalid_argument beyond max_candidates) and marks the
/// frontier. `benefit` is called once per subset.
[[nodiscard]] Frontier enumerate_frontier(const std::vector<Candidate>& candidates,
                                          const BenefitFn& benefit,
                                          std::size_t max_candidates = 16);

void write_frontier_csv(std::ostream& os, const Frontier& frontier);
void write_frontier_json(std::ostream& os, const Frontier& frontier);
/// Graphviz scatter of memory (x) vs coverage (y): frontier points
/// filled, reference sets labelled, frontier polyline drawn in cost order.
void write_frontier_dot(std::ostream& os, const Frontier& frontier,
                        const std::string& title);

}  // namespace epea::opt
