// On-disk memoization of ground-truth subset evaluations. Every campaign
//-measured coverage is stored under a key binding the subset to the full
// experiment identity (error model, campaign sizing, seed), so refining a
// frontier — or re-running it with more subsets — re-executes campaigns
// only for subsets never measured before. The FastFlip-style contract:
// same key, same counts, zero injections.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "opt/types.hpp"

namespace epea::opt {

/// One memoized ground-truth measurement (integer counts kept alongside
/// the derived coverage so merged results stay auditable).
struct CacheEntry {
    double coverage = 0.0;
    std::uint64_t detected = 0;  ///< errors detected by the subset
    std::uint64_t active = 0;    ///< activated errors (coverage denominator)
    std::uint64_t runs = 0;      ///< injection runs behind the measurement
};

class SubsetCache {
public:
    /// Binds the cache to `dir`/subset_cache.json and loads it when
    /// present. A corrupt file is treated as empty (measurements rerun).
    explicit SubsetCache(std::string dir);

    [[nodiscard]] std::optional<CacheEntry> lookup(const std::string& key) const;
    void store(const std::string& key, const CacheEntry& entry);
    /// Atomically rewrites subset_cache.json with the current entries.
    void flush() const;
    [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
    [[nodiscard]] const std::string& path() const noexcept { return path_; }

    /// The cache key of one (subset, experiment identity) pair.
    [[nodiscard]] static std::string key(ErrorModel model, std::size_t cases,
                                         std::size_t times_per_bit, std::uint64_t seed,
                                         std::uint64_t severe_period,
                                         const std::vector<std::string>& subset_signals);

private:
    std::string path_;
    std::map<std::string, CacheEntry> entries_;
};

}  // namespace epea::opt
