#include "opt/cache.hpp"

#include <fstream>
#include <sstream>

#include "campaign/checkpoint.hpp"
#include "campaign/json.hpp"

namespace epea::opt {

namespace {
constexpr std::int64_t kCacheVersion = 1;
}

SubsetCache::SubsetCache(std::string dir) : path_(std::move(dir)) {
    path_ += "/subset_cache.json";
    std::ifstream in(path_);
    if (!in) return;
    std::stringstream buffer;
    buffer << in.rdbuf();
    try {
        const campaign::JsonValue root = campaign::JsonValue::parse(buffer.str());
        if (root.at("version").as_int() != kCacheVersion) return;
        for (const auto& [key, value] : root.at("entries").as_object()) {
            CacheEntry e;
            e.coverage = value.at("coverage").as_double();
            e.detected = static_cast<std::uint64_t>(value.at("detected").as_int());
            e.active = static_cast<std::uint64_t>(value.at("active").as_int());
            e.runs = static_cast<std::uint64_t>(value.at("runs").as_int());
            entries_[key] = e;
        }
    } catch (const std::exception&) {
        entries_.clear();  // corrupt cache: start over, measurements rerun
    }
}

std::optional<CacheEntry> SubsetCache::lookup(const std::string& key) const {
    const auto it = entries_.find(key);
    if (it == entries_.end()) return std::nullopt;
    return it->second;
}

void SubsetCache::store(const std::string& key, const CacheEntry& entry) {
    entries_[key] = entry;
}

void SubsetCache::flush() const {
    campaign::JsonObject entries;
    for (const auto& [key, e] : entries_) {
        campaign::JsonObject o;
        o["coverage"] = e.coverage;
        o["detected"] = e.detected;
        o["active"] = e.active;
        o["runs"] = e.runs;
        entries[key] = std::move(o);
    }
    campaign::JsonObject root;
    root["version"] = kCacheVersion;
    root["entries"] = std::move(entries);
    campaign::atomic_write_file(path_, campaign::JsonValue(std::move(root)).dump());
}

std::string SubsetCache::key(ErrorModel model, std::size_t cases,
                             std::size_t times_per_bit, std::uint64_t seed,
                             std::uint64_t severe_period,
                             const std::vector<std::string>& subset_signals) {
    std::string k = to_string(model);
    k += "|c" + std::to_string(cases);
    k += "|t" + std::to_string(times_per_bit);
    k += "|s" + std::to_string(seed);
    if (model == ErrorModel::kSevere) {
        k += "|p" + std::to_string(severe_period);
    }
    k += "|" + canonical_subset(subset_signals);
    return k;
}

}  // namespace epea::opt
