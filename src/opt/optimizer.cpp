#include "opt/optimizer.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "exp/arrestment_experiments.hpp"
#include "exp/paper_data.hpp"
#include "target/arrestment_system.hpp"

namespace epea::opt {

namespace {

/// The EA-carrying signals of the arrestment target (EA1..EA7 locations)
/// as search candidates, with kind-derived costs.
std::vector<Candidate> arrestment_candidates() {
    const model::SystemModel system = target::make_arrestment_model();
    std::vector<model::SignalId> ids;
    for (const auto& [ea_name, signal_name] : exp::arrestment_ea_signals()) {
        ids.push_back(system.signal_id(signal_name));
    }
    const CostModel costs = CostModel::from_signal_kinds(system, ids);
    std::vector<Candidate> out;
    for (const model::SignalId id : ids) {
        out.push_back(Candidate{system.signal_name(id), costs.of(system.signal_name(id))});
    }
    return out;
}

std::vector<std::size_t> indices_of(const std::vector<Candidate>& candidates,
                                    const std::vector<std::string>& signals) {
    std::vector<std::size_t> subset;
    for (const std::string& s : signals) {
        const auto it = std::find_if(candidates.begin(), candidates.end(),
                                     [&](const Candidate& c) { return c.name == s; });
        if (it == candidates.end()) {
            throw std::invalid_argument("PlacementOptimizer: '" + s +
                                        "' is not a candidate location");
        }
        subset.push_back(static_cast<std::size_t>(it - candidates.begin()));
    }
    std::sort(subset.begin(), subset.end());
    return subset;
}

}  // namespace

std::vector<ReferenceSet> arrestment_reference_sets() {
    std::vector<ReferenceSet> sets;
    sets.push_back(ReferenceSet{"EH-set", exp::paper_eh_signals()});
    sets.push_back(ReferenceSet{"PA-set", exp::paper_pa_signals()});
    ReferenceSet ext{"EXT-set", exp::paper_pa_signals()};
    ext.signals.push_back("ms_slot_nbr");  // §10: the globally exposed slot counter
    sets.push_back(std::move(ext));
    return sets;
}

PlacementOptimizer PlacementOptimizer::analytic(const epic::PermeabilityMatrix& pm,
                                                ErrorModel model) {
    std::vector<model::SignalId> ids;
    for (const auto& [ea_name, signal_name] : exp::arrestment_ea_signals()) {
        ids.push_back(pm.system().signal_id(signal_name));
    }
    return analytic(pm, model, ids);
}

PlacementOptimizer PlacementOptimizer::analytic(
    const epic::PermeabilityMatrix& pm, ErrorModel model,
    const std::vector<model::SignalId>& candidates) {
    PlacementOptimizer opt;
    const CostModel costs = CostModel::from_signal_kinds(pm.system(), candidates);
    std::vector<model::SignalId> costed;
    for (const model::SignalId id : candidates) {
        const std::string& name = pm.system().signal_name(id);
        if (!costs.has(name)) continue;  // boolean signals carry no EA
        opt.candidates_.push_back(Candidate{name, costs.of(name)});
        costed.push_back(id);
    }
    opt.analytic_ = std::make_shared<AnalyticBenefit>(pm, model, costed);
    return opt;
}

PlacementOptimizer PlacementOptimizer::with_detection(
    const model::SystemModel& system, const std::vector<model::SignalId>& candidates,
    std::vector<std::vector<double>> detect) {
    PlacementOptimizer opt;
    const CostModel costs = CostModel::from_signal_kinds(system, candidates);
    for (const model::SignalId id : candidates) {
        const std::string& name = system.signal_name(id);
        if (!costs.has(name)) {
            throw std::invalid_argument(
                "PlacementOptimizer::with_detection: candidate '" + name +
                "' carries no EA cost (boolean signal); filter candidates "
                "before building the detection matrix");
        }
        opt.candidates_.push_back(Candidate{name, costs.of(name)});
    }
    opt.analytic_ = std::make_shared<AnalyticBenefit>(std::move(detect), candidates);
    return opt;
}

PlacementOptimizer PlacementOptimizer::ground_truth(EvaluatorOptions options) {
    PlacementOptimizer opt;
    opt.candidates_ = arrestment_candidates();
    opt.evaluator_ = std::make_shared<CampaignEvaluator>(std::move(options));
    return opt;
}

void PlacementOptimizer::ensure_ground_truth_lattice() {
    if (!evaluator_ || lattice_measured_) return;
    const std::size_t n = candidates_.size();
    if (n > 16) {
        throw std::invalid_argument(
            "PlacementOptimizer: ground-truth lattice over " + std::to_string(n) +
            " candidates is infeasible (2^n campaign subsets)");
    }
    std::vector<std::vector<std::string>> subsets;
    for (std::size_t mask = 1; mask < (std::size_t{1} << n); ++mask) {
        std::vector<std::string> signals;
        for (std::size_t i = 0; i < n; ++i) {
            if (mask & (std::size_t{1} << i)) signals.push_back(candidates_[i].name);
        }
        subsets.push_back(std::move(signals));
    }
    const std::vector<CacheEntry> entries = evaluator_->evaluate(subsets);
    for (std::size_t i = 0; i < subsets.size(); ++i) {
        measured_[canonical_subset(subsets[i])] = entries[i].coverage;
    }
    lattice_measured_ = true;
}

BenefitFn PlacementOptimizer::benefit_fn() {
    if (analytic_) {
        auto analytic = analytic_;
        return [analytic](const std::vector<std::size_t>& subset) {
            return analytic->coverage(subset);
        };
    }
    ensure_ground_truth_lattice();
    // Lattice-backed lookup: every non-empty subset the searches can ask
    // about was measured (or cache-loaded) by ensure_ground_truth_lattice.
    // The empty subset — branch-and-bound evaluates it at the root — is
    // no detection at all, not a campaign.
    const auto* measured = &measured_;
    const auto* candidates = &candidates_;
    return [measured, candidates](const std::vector<std::size_t>& subset) {
        if (subset.empty()) return 0.0;
        std::vector<std::string> names;
        for (const std::size_t i : subset) names.push_back((*candidates)[i].name);
        const auto it = measured->find(canonical_subset(names));
        if (it == measured->end()) {
            throw std::logic_error("PlacementOptimizer: subset not in measured lattice");
        }
        return it->second;
    };
}

double PlacementOptimizer::coverage(const std::vector<std::string>& signals) {
    if (signals.empty()) return 0.0;
    return benefit_fn()(indices_of(candidates_, signals));
}

SearchResult PlacementOptimizer::optimize(const SearchOptions& options) {
    const BenefitFn benefit = benefit_fn();
    SearchOptions effective = options;
    if (effective.hints == nullptr && hints_.applies_to(candidates_.size())) {
        effective.hints = &hints_;
    }
    if (candidates_.size() <= effective.max_exact_candidates) {
        return branch_and_bound(candidates_, benefit, effective);
    }
    return greedy_search(candidates_, benefit, effective);
}

Frontier PlacementOptimizer::frontier() {
    Frontier f = enumerate_frontier(candidates_, benefit_fn());
    // Label the points matching the paper's reference placements.
    for (const ReferenceSet& ref : arrestment_reference_sets()) {
        std::vector<std::string> ref_signals = ref.signals;
        const std::string key = canonical_subset(ref_signals);
        for (FrontierPoint& p : f.points) {
            std::vector<std::string> signals = p.signals;
            if (canonical_subset(signals) == key) {
                p.label = ref.label;
                break;
            }
        }
    }
    return f;
}

std::string PlacementOptimizer::explain(const Frontier& f) const {
    std::ostringstream os;
    os << "placement frontier: " << f.points.size() << " subsets over "
       << candidates_.size() << " candidate locations, "
       << f.frontier_points().size() << " on the Pareto frontier\n\n";

    const FrontierPoint* eh = nullptr;
    const FrontierPoint* pa = nullptr;
    for (const FrontierPoint& p : f.points) {
        if (p.label.empty()) continue;
        if (p.label == "EH-set") eh = &p;
        if (p.label == "PA-set") pa = &p;
        os << p.label << " {" << canonical_subset(p.signals) << "}\n"
           << "  coverage " << p.coverage << ", memory " << p.cost.memory
           << " B, time " << p.cost.time << " cmp/tick\n"
           << "  " << (p.on_frontier ? "ON the frontier" : "off the frontier")
           << ", coverage slack " << coverage_slack(f.points, p) << "\n";
    }

    if (eh != nullptr && pa != nullptr && eh->cost.total() > 0.0) {
        os << "\nPA-set vs EH-set: coverage " << pa->coverage << " vs " << eh->coverage
           << ", total cost ratio " << pa->cost.total() / eh->cost.total() << " ("
           << pa->cost.memory << "+" << pa->cost.time << " vs " << eh->cost.memory
           << "+" << eh->cost.time << ")\n";
    }
    return os.str();
}

}  // namespace epea::opt
