// JSON reporter for `place optimize` results — shared between the CLI
// (`epea_tool place optimize --json`) and the serve daemon
// (`POST /v1/place/optimize`) so the two emit byte-identical bodies for
// the same search (serve tests prove it against the real binary).
#pragma once

#include <string>
#include <vector>

#include "opt/search.hpp"
#include "opt/types.hpp"

namespace epea::opt {

/// {"benefit":...,"coverage":...,"cost":{"memory":...,"time":...},
///  "error_model":...,"evaluations":...,"exact":...,"selected":[...]}
/// plus the CLI's trailing newline. `selected` is the canonically sorted
/// signal-name list, `benefit` the mode name
/// (visibility|analytic|ground-truth).
[[nodiscard]] std::string optimize_result_json(
    const SearchResult& result, const std::vector<Candidate>& candidates,
    ErrorModel model, const std::string& benefit_mode);

}  // namespace epea::opt
