#include "opt/benefit.hpp"

#include <set>
#include <stdexcept>
#include <vector>

#include "epic/paths.hpp"

namespace epea::opt {

double visibility(const epic::PermeabilityMatrix& pm, model::SignalId source,
                  model::SignalId observer) {
    if (source == observer) return 1.0;
    // Maximal forward paths share prefixes; collect the *distinct*
    // prefixes ending at the observer so a shared prefix is composed once.
    std::set<std::vector<std::size_t>> seen;
    double survive = 1.0;
    for (const epic::PropPath& path : epic::forward_paths(pm, source)) {
        for (std::size_t n = 0; n < path.edges.size(); ++n) {
            if (path.edges[n].to != observer) continue;
            std::vector<std::size_t> signature;
            double weight = 1.0;
            for (std::size_t e = 0; e <= n; ++e) {
                signature.push_back(path.edges[e].module.index());
                signature.push_back(path.edges[e].in_port);
                signature.push_back(path.edges[e].out_port);
                weight *= path.edges[e].permeability;
            }
            if (seen.insert(std::move(signature)).second) {
                survive *= 1.0 - weight;
            }
            break;  // a path never revisits a signal
        }
    }
    return 1.0 - survive;
}

AnalyticBenefit::AnalyticBenefit(const epic::PermeabilityMatrix& pm, ErrorModel model,
                                 std::vector<model::SignalId> candidates)
    : candidates_(std::move(candidates)) {
    if (candidates_.empty()) {
        throw std::invalid_argument("AnalyticBenefit: no candidate locations");
    }
    const model::SystemModel& system = pm.system();
    const std::vector<model::SignalId> sites =
        model == ErrorModel::kInput
            ? system.signals_with_role(model::SignalRole::kSystemInput)
            : system.all_signals();

    detect_.reserve(sites.size());
    for (const model::SignalId site : sites) {
        std::vector<double>& row = detect_.emplace_back();
        row.reserve(candidates_.size());
        for (const model::SignalId cand : candidates_) {
            row.push_back(visibility(pm, site, cand));
        }
    }
}

AnalyticBenefit::AnalyticBenefit(std::vector<std::vector<double>> detect,
                                 std::vector<model::SignalId> candidates)
    : candidates_(std::move(candidates)), detect_(std::move(detect)) {
    if (candidates_.empty()) {
        throw std::invalid_argument("AnalyticBenefit: no candidate locations");
    }
    for (const std::vector<double>& row : detect_) {
        if (row.size() != candidates_.size()) {
            throw std::invalid_argument(
                "AnalyticBenefit: detection row width differs from the "
                "candidate count");
        }
    }
}

double AnalyticBenefit::coverage(const std::vector<std::size_t>& subset) const {
    ++evaluations_;
    if (detect_.empty()) return 0.0;
    double sum = 0.0;
    for (const std::vector<double>& row : detect_) {
        double miss = 1.0;
        for (const std::size_t c : subset) {
            miss *= 1.0 - row.at(c);
        }
        sum += 1.0 - miss;
    }
    return sum / static_cast<double>(detect_.size());
}

}  // namespace epea::opt
