// Subset-search strategies over (candidate locations, benefit function,
// cost budget). Two regimes:
//
//  - branch_and_bound: exact optimum for small candidate counts. Guarded
//    by max_exact_candidates — beyond ~20 locations the 2^n lattice is
//    infeasible and the call throws instead of silently running forever.
//  - greedy_search: marginal-gain-per-cost heuristic for large candidate
//    counts; O(n^2) benefit evaluations, the classic (1 - 1/e)-style
//    fallback for monotone coverage objectives.
//
// Both take the benefit as an opaque function of candidate indices, so
// they run identically against the analytic estimator and the
// campaign-backed ground-truth evaluator.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "opt/cost.hpp"

namespace epea::opt {

/// One placeable EA location.
struct Candidate {
    std::string name;
    PlacementCost cost;
};

/// Benefit of a subset given as sorted indices into the candidate list.
using BenefitFn = std::function<double(const std::vector<std::size_t>&)>;

/// Structural prune hints derived from the signal graph by the prove::
/// verifier. witnesses[c][e] says error site e can ever manifest on
/// candidate c's signal, so coverage of any subset S is bounded above by
/// |union of S's witness sets| / site_count — a bound computable without
/// a benefit evaluation. Sound only for benefit functions whose per-site
/// detection support equals graph reachability (the analytic and
/// visibility estimators; never attach for campaign ground truth).
struct StructuralHints {
    std::size_t site_count = 0;
    std::vector<std::vector<bool>> witnesses;  ///< [candidate][site]

    [[nodiscard]] bool applies_to(std::size_t candidate_count) const noexcept {
        return site_count > 0 && witnesses.size() == candidate_count;
    }
    /// True when no error can ever reach the candidate — its marginal
    /// gain is exactly zero under any analytic benefit.
    [[nodiscard]] bool dead(std::size_t candidate) const;
};

struct SearchOptions {
    CostBudget budget;
    /// branch_and_bound refuses more candidates than this (throws
    /// std::invalid_argument) — the exact lattice is 2^n nodes.
    std::size_t max_exact_candidates = 20;
    /// Greedy stops when the best remaining marginal gain is below this.
    double min_gain = 1e-9;
    /// Optional certificate-derived prune hints (non-owning; must outlive
    /// the search call). Searches only consult them when applies_to()
    /// matches the candidate count. Results are guaranteed identical with
    /// and without hints — hints only skip benefit evaluations the
    /// searches can prove redundant.
    const StructuralHints* hints = nullptr;
};

struct SearchResult {
    std::vector<std::size_t> selected;  ///< sorted candidate indices
    double coverage = 0.0;
    PlacementCost cost;
    std::size_t evaluations = 0;  ///< benefit calls spent by the search
    std::size_t nodes = 0;        ///< lattice nodes visited / candidates scanned
    std::size_t structural_prunes = 0;  ///< evaluations avoided via hints
    bool exact = false;           ///< true when found by branch-and-bound

    [[nodiscard]] std::vector<std::string> selected_names(
        const std::vector<Candidate>& candidates) const;
};

/// Greedy marginal-gain-per-cost: repeatedly adds the affordable candidate
/// with the highest (coverage gain / cost.total()) until nothing fits or
/// gains fall below min_gain.
[[nodiscard]] SearchResult greedy_search(const std::vector<Candidate>& candidates,
                                         const BenefitFn& benefit,
                                         const SearchOptions& options = {});

/// Exact maximum-coverage subset within budget (ties broken toward lower
/// cost). Assumes benefit is monotone in the subset (adding a location
/// never hurts) — true for any or-composed detection coverage. Throws
/// std::invalid_argument when candidates.size() > max_exact_candidates.
[[nodiscard]] SearchResult branch_and_bound(const std::vector<Candidate>& candidates,
                                            const BenefitFn& benefit,
                                            const SearchOptions& options = {});

}  // namespace epea::opt
