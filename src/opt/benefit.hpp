// Fast analytic benefit estimator. Instead of running a fault-injection
// campaign per candidate subset, it composes the epic propagation
// measures: the probability that an EA at candidate location c detects an
// error born at site e is approximated by the error's *visibility* at c —
// the Eq.-2-style composition over the prefixes of forward propagation
// paths that reach c (impact() itself only credits paths *terminating*
// at the sink, which is correct for system outputs but scores an EA on
// an intermediate signal as zero). A subset's coverage is then the mean,
// over the error sites of the chosen model, of the probability that at
// least one selected location sees the error:
//
//   coverage(S) = mean_e [ 1 - prod_{c in S} (1 - D[e][c]) ]
//
// The independence assumption across locations mirrors the paper's own
// caveat for impact (§8): the estimate is a *ranking* device for search,
// to be confirmed by the campaign-backed ground-truth evaluator.
#pragma once

#include <cstddef>
#include <vector>

#include "epic/matrix.hpp"
#include "opt/types.hpp"

namespace epea::opt {

/// Probability that an error born at `source` becomes visible at
/// `observer`: 1 - prod over the distinct forward-path prefixes from
/// source to observer of (1 - prefix weight). `source == observer` is
/// the degenerate 1.0; 0 when no path reaches the observer.
[[nodiscard]] double visibility(const epic::PermeabilityMatrix& pm,
                                model::SignalId source, model::SignalId observer);

class AnalyticBenefit {
public:
    /// Precomputes D[site][candidate] for every error site of `model`
    /// (input model: system-input signals; severe model: every signal,
    /// since RAM flips can corrupt any of them). The matrix (and its
    /// system) must outlive this object.
    AnalyticBenefit(const epic::PermeabilityMatrix& pm, ErrorModel model,
                    std::vector<model::SignalId> candidates);

    /// Precomputed detection matrix D[site][candidate] (used by the
    /// analytic-engine benefit mode, whose fixpoint composition lives in
    /// src/analytic and is injected here to keep the dependency one-way).
    /// Every row must have one column per candidate.
    AnalyticBenefit(std::vector<std::vector<double>> detect,
                    std::vector<model::SignalId> candidates);

    /// Estimated coverage of a subset, given as indices into candidates().
    [[nodiscard]] double coverage(const std::vector<std::size_t>& subset) const;

    [[nodiscard]] const std::vector<model::SignalId>& candidates() const noexcept {
        return candidates_;
    }
    [[nodiscard]] std::size_t site_count() const noexcept { return detect_.size(); }
    /// Number of coverage() calls served (search-effort metric).
    [[nodiscard]] std::size_t evaluations() const noexcept { return evaluations_; }

private:
    std::vector<model::SignalId> candidates_;
    std::vector<std::vector<double>> detect_;  // [site][candidate]
    mutable std::size_t evaluations_ = 0;
};

}  // namespace epea::opt
