#include "opt/cost.hpp"

#include <stdexcept>

#include "ea/assertion.hpp"

namespace epea::opt {

void CostModel::set(const std::string& signal, PlacementCost cost) {
    costs_[signal] = cost;
}

PlacementCost CostModel::of(const std::string& signal) const {
    const auto it = costs_.find(signal);
    if (it == costs_.end()) {
        throw std::out_of_range("CostModel: no cost entry for signal '" + signal + "'");
    }
    return it->second;
}

bool CostModel::has(const std::string& signal) const {
    return costs_.find(signal) != costs_.end();
}

PlacementCost CostModel::subset_cost(const std::vector<std::string>& signals) const {
    PlacementCost total;
    for (const std::string& s : signals) total = total + of(s);
    return total;
}

CostModel CostModel::from_signal_kinds(const model::SystemModel& system,
                                       const std::vector<model::SignalId>& signals) {
    CostModel cm;
    for (const model::SignalId id : signals) {
        const model::SignalSpec& spec = system.signal(id);
        ea::EaType type = ea::EaType::kContinuous;
        switch (spec.kind) {
            case model::SignalKind::kContinuous: type = ea::EaType::kContinuous; break;
            case model::SignalKind::kMonotonic: type = ea::EaType::kMonotonic; break;
            case model::SignalKind::kDiscrete: type = ea::EaType::kDiscrete; break;
            case model::SignalKind::kBoolean:
                continue;  // no EA type guards boolean signals (§5.1)
        }
        const ea::EaCost bytes = ea::cost_of(type);
        cm.set(spec.name,
               PlacementCost{static_cast<double>(bytes.rom + bytes.ram),
                             static_cast<double>(ea::check_cycles_of(type))});
    }
    return cm;
}

}  // namespace epea::opt
