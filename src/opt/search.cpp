#include "opt/search.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace epea::opt {

namespace {

constexpr double kEps = 1e-12;

}  // namespace

bool StructuralHints::dead(std::size_t candidate) const {
    const std::vector<bool>& row = witnesses.at(candidate);
    return std::none_of(row.begin(), row.end(), [](bool b) { return b; });
}

std::vector<std::string> SearchResult::selected_names(
    const std::vector<Candidate>& candidates) const {
    std::vector<std::string> names;
    names.reserve(selected.size());
    for (const std::size_t i : selected) names.push_back(candidates.at(i).name);
    return names;
}

SearchResult greedy_search(const std::vector<Candidate>& candidates,
                           const BenefitFn& benefit, const SearchOptions& options) {
    SearchResult result;
    std::vector<bool> taken(candidates.size(), false);
    double current = 0.0;
    const StructuralHints* hints =
        options.hints != nullptr && options.hints->applies_to(candidates.size())
            ? options.hints
            : nullptr;

    for (;;) {
        std::size_t best = candidates.size();
        double best_density = 0.0;
        double best_coverage = current;

        for (std::size_t i = 0; i < candidates.size(); ++i) {
            if (taken[i]) continue;
            ++result.nodes;
            const PlacementCost with = result.cost + candidates[i].cost;
            if (!options.budget.admits(with)) continue;
            // A candidate no error can reach gains exactly 0.0 (< any
            // positive min_gain, and density 0 can never win a strict
            // comparison) — skip the benefit evaluation outright.
            if (hints != nullptr && hints->dead(i)) {
                ++result.structural_prunes;
                continue;
            }

            std::vector<std::size_t> trial = result.selected;
            trial.insert(std::lower_bound(trial.begin(), trial.end(), i), i);
            const double cov = benefit(trial);
            ++result.evaluations;

            const double gain = cov - current;
            if (gain < options.min_gain) continue;
            // Marginal gain per unit scalar cost; a zero-cost candidate
            // with positive gain is always worth taking.
            const double denom = std::max(candidates[i].cost.total(), kEps);
            const double density = gain / denom;
            if (density > best_density + kEps ||
                (density > best_density - kEps && cov > best_coverage + kEps)) {
                best = i;
                best_density = density;
                best_coverage = cov;
            }
        }

        if (best == candidates.size()) break;
        taken[best] = true;
        result.selected.insert(
            std::lower_bound(result.selected.begin(), result.selected.end(), best),
            best);
        result.cost = result.cost + candidates[best].cost;
        current = best_coverage;
    }

    result.coverage = current;
    result.exact = false;
    return result;
}

namespace {

struct BnbState {
    const std::vector<Candidate>* candidates = nullptr;
    const BenefitFn* benefit = nullptr;
    const SearchOptions* options = nullptr;
    const StructuralHints* hints = nullptr;
    std::vector<std::size_t> chosen;
    SearchResult best;
    std::size_t evaluations = 0;
    std::size_t nodes = 0;
    std::size_t structural_prunes = 0;

    double eval(const std::vector<std::size_t>& subset) {
        ++evaluations;
        return (*benefit)(subset);
    }

    // Certificate-derived upper bound on any completion of this node:
    // the fraction of error sites the witness sets of (chosen + every
    // affordable undecided candidate) can reach at all. Never below the
    // benefit-evaluated bound() of the same optimistic set, so pruning on
    // it keeps the traversal — and therefore the result — bit-identical;
    // it merely skips bound()'s benefit evaluation where the outcome is
    // already decided structurally.
    double structural_bound(std::size_t next, const PlacementCost& cost) const {
        std::vector<bool> witnessed(hints->site_count, false);
        const auto add = [&](std::size_t i) {
            const std::vector<bool>& row = hints->witnesses[i];
            for (std::size_t e = 0; e < row.size(); ++e) {
                if (row[e]) witnessed[e] = true;
            }
        };
        for (const std::size_t i : chosen) add(i);
        for (std::size_t i = next; i < candidates->size(); ++i) {
            if (options->budget.admits(cost + (*candidates)[i].cost)) add(i);
        }
        const auto hit = static_cast<double>(
            std::count(witnessed.begin(), witnessed.end(), true));
        return hit / static_cast<double>(hints->site_count);
    }

    // Optimistic bound at a node: the coverage of (chosen so far) plus
    // every not-yet-decided candidate that individually still fits the
    // residual budget. Monotonicity makes this an upper bound on any
    // completion of the node.
    double bound(std::size_t next, const PlacementCost& cost) {
        std::vector<std::size_t> optimistic = chosen;
        for (std::size_t i = next; i < candidates->size(); ++i) {
            if (options->budget.admits(cost + (*candidates)[i].cost)) {
                optimistic.push_back(i);
            }
        }
        std::sort(optimistic.begin(), optimistic.end());
        return eval(optimistic);
    }

    void visit(std::size_t next, const PlacementCost& cost) {
        ++nodes;
        const double cov = eval(chosen);
        const bool better = cov > best.coverage + kEps;
        const bool tie_cheaper = cov > best.coverage - kEps &&
                                 cost.total() < best.cost.total() - kEps;
        if (better || tie_cheaper) {
            best.selected = chosen;
            std::sort(best.selected.begin(), best.selected.end());
            best.coverage = cov;
            best.cost = cost;
        }
        if (next >= candidates->size()) return;
        if (hints != nullptr &&
            structural_bound(next, cost) <= best.coverage + kEps) {
            ++structural_prunes;  // bound() would have pruned here too
            return;
        }
        if (bound(next, cost) <= best.coverage + kEps) return;  // prune

        const PlacementCost with = cost + (*candidates)[next].cost;
        if (options->budget.admits(with)) {
            chosen.push_back(next);
            visit(next + 1, with);
            chosen.pop_back();
        }
        visit(next + 1, cost);
    }
};

}  // namespace

SearchResult branch_and_bound(const std::vector<Candidate>& candidates,
                              const BenefitFn& benefit, const SearchOptions& options) {
    if (candidates.size() > options.max_exact_candidates) {
        throw std::invalid_argument(
            "branch_and_bound: " + std::to_string(candidates.size()) +
            " candidates exceed max_exact_candidates=" +
            std::to_string(options.max_exact_candidates) +
            " (2^n lattice infeasible; use greedy_search)");
    }
    BnbState state;
    state.candidates = &candidates;
    state.benefit = &benefit;
    state.options = &options;
    if (options.hints != nullptr && options.hints->applies_to(candidates.size())) {
        state.hints = options.hints;
    }
    state.best.coverage = -1.0;  // so the empty set is recorded first
    state.visit(0, PlacementCost{});
    state.best.evaluations = state.evaluations;
    state.best.nodes = state.nodes;
    state.best.structural_prunes = state.structural_prunes;
    state.best.exact = true;
    if (state.best.coverage < 0.0) state.best.coverage = 0.0;
    return state.best;
}

}  // namespace epea::opt
