#include "opt/search.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace epea::opt {

namespace {

constexpr double kEps = 1e-12;

}  // namespace

std::vector<std::string> SearchResult::selected_names(
    const std::vector<Candidate>& candidates) const {
    std::vector<std::string> names;
    names.reserve(selected.size());
    for (const std::size_t i : selected) names.push_back(candidates.at(i).name);
    return names;
}

SearchResult greedy_search(const std::vector<Candidate>& candidates,
                           const BenefitFn& benefit, const SearchOptions& options) {
    SearchResult result;
    std::vector<bool> taken(candidates.size(), false);
    double current = 0.0;

    for (;;) {
        std::size_t best = candidates.size();
        double best_density = 0.0;
        double best_coverage = current;

        for (std::size_t i = 0; i < candidates.size(); ++i) {
            if (taken[i]) continue;
            const PlacementCost with = result.cost + candidates[i].cost;
            if (!options.budget.admits(with)) continue;

            std::vector<std::size_t> trial = result.selected;
            trial.insert(std::lower_bound(trial.begin(), trial.end(), i), i);
            const double cov = benefit(trial);
            ++result.evaluations;

            const double gain = cov - current;
            if (gain < options.min_gain) continue;
            // Marginal gain per unit scalar cost; a zero-cost candidate
            // with positive gain is always worth taking.
            const double denom = std::max(candidates[i].cost.total(), kEps);
            const double density = gain / denom;
            if (density > best_density + kEps ||
                (density > best_density - kEps && cov > best_coverage + kEps)) {
                best = i;
                best_density = density;
                best_coverage = cov;
            }
        }

        if (best == candidates.size()) break;
        taken[best] = true;
        result.selected.insert(
            std::lower_bound(result.selected.begin(), result.selected.end(), best),
            best);
        result.cost = result.cost + candidates[best].cost;
        current = best_coverage;
    }

    result.coverage = current;
    result.exact = false;
    return result;
}

namespace {

struct BnbState {
    const std::vector<Candidate>* candidates = nullptr;
    const BenefitFn* benefit = nullptr;
    const SearchOptions* options = nullptr;
    std::vector<std::size_t> chosen;
    SearchResult best;
    std::size_t evaluations = 0;

    double eval(const std::vector<std::size_t>& subset) {
        ++evaluations;
        return (*benefit)(subset);
    }

    // Optimistic bound at a node: the coverage of (chosen so far) plus
    // every not-yet-decided candidate that individually still fits the
    // residual budget. Monotonicity makes this an upper bound on any
    // completion of the node.
    double bound(std::size_t next, const PlacementCost& cost) {
        std::vector<std::size_t> optimistic = chosen;
        for (std::size_t i = next; i < candidates->size(); ++i) {
            if (options->budget.admits(cost + (*candidates)[i].cost)) {
                optimistic.push_back(i);
            }
        }
        std::sort(optimistic.begin(), optimistic.end());
        return eval(optimistic);
    }

    void visit(std::size_t next, const PlacementCost& cost) {
        const double cov = eval(chosen);
        const bool better = cov > best.coverage + kEps;
        const bool tie_cheaper = cov > best.coverage - kEps &&
                                 cost.total() < best.cost.total() - kEps;
        if (better || tie_cheaper) {
            best.selected = chosen;
            std::sort(best.selected.begin(), best.selected.end());
            best.coverage = cov;
            best.cost = cost;
        }
        if (next >= candidates->size()) return;
        if (bound(next, cost) <= best.coverage + kEps) return;  // prune

        const PlacementCost with = cost + (*candidates)[next].cost;
        if (options->budget.admits(with)) {
            chosen.push_back(next);
            visit(next + 1, with);
            chosen.pop_back();
        }
        visit(next + 1, cost);
    }
};

}  // namespace

SearchResult branch_and_bound(const std::vector<Candidate>& candidates,
                              const BenefitFn& benefit, const SearchOptions& options) {
    if (candidates.size() > options.max_exact_candidates) {
        throw std::invalid_argument(
            "branch_and_bound: " + std::to_string(candidates.size()) +
            " candidates exceed max_exact_candidates=" +
            std::to_string(options.max_exact_candidates) +
            " (2^n lattice infeasible; use greedy_search)");
    }
    BnbState state;
    state.candidates = &candidates;
    state.benefit = &benefit;
    state.options = &options;
    state.best.coverage = -1.0;  // so the empty set is recorded first
    state.visit(0, PlacementCost{});
    state.best.evaluations = state.evaluations;
    state.best.exact = true;
    if (state.best.coverage < 0.0) state.best.coverage = 0.0;
    return state.best;
}

}  // namespace epea::opt
