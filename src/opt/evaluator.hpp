// Ground-truth benefit: the chosen error model actually run through the
// sharded campaign executor (src/campaign/) against the arrestment
// target. The evaluator exploits the fact that the experiment drivers
// score *every* provided EA subset during the same injection runs, so
// pricing any number of new subsets costs exactly one campaign. Measured
// coverages are memoized per (subset, error model, sizing, seed) in a
// SubsetCache — a warm-cache evaluation executes zero campaigns.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fi/fastpath.hpp"
#include "opt/cache.hpp"
#include "opt/types.hpp"

namespace epea::opt {

struct EvaluatorOptions {
    ErrorModel model = ErrorModel::kInput;
    /// Working directory: holds subset_cache.json and one eval-* campaign
    /// subdirectory per executed batch.
    std::string dir;
    std::size_t cases = 25;
    std::size_t times_per_bit = 10;
    std::uint64_t severe_period = 20;  ///< severe model only
    std::uint64_t seed = 0x7ab1e1ULL;
    std::size_t shards = 5;
    std::size_t threads = 1;
    bool echo_events = false;
    /// Fast path (DESIGN.md §9) for the underlying campaigns; ground
    /// truth is bit-identical either way.
    bool use_fastpath = true;
    /// Batched SoA execution (DESIGN.md §14) for the underlying campaigns.
    bool use_batch = true;
    /// Lanes per lockstep batch; 0 picks the auto width.
    std::size_t batch_width = 0;
};

class CampaignEvaluator {
public:
    explicit CampaignEvaluator(EvaluatorOptions options);

    /// Measured coverage for each subset (signal names; must all carry an
    /// EA on the arrestment target). All cache misses are batched into
    /// ONE campaign; on a fully warm cache no campaign directory is even
    /// touched. Results are flushed to the cache before returning.
    [[nodiscard]] std::vector<CacheEntry> evaluate(
        const std::vector<std::vector<std::string>>& subsets);

    /// Convenience single-subset form.
    [[nodiscard]] double coverage(const std::vector<std::string>& subset);

    /// Campaigns actually executed by this evaluator instance — the
    /// number a warm-cache run must keep at zero.
    [[nodiscard]] std::size_t campaigns_executed() const noexcept {
        return campaigns_executed_;
    }
    [[nodiscard]] std::size_t cache_hits() const noexcept { return cache_hits_; }
    [[nodiscard]] std::size_t cache_misses() const noexcept { return cache_misses_; }
    [[nodiscard]] const SubsetCache& cache() const noexcept { return cache_; }
    [[nodiscard]] const EvaluatorOptions& options() const noexcept { return options_; }

private:
    [[nodiscard]] std::string subset_key(const std::vector<std::string>& subset) const;

    EvaluatorOptions options_;
    SubsetCache cache_;
    std::size_t campaigns_executed_ = 0;
    std::size_t cache_hits_ = 0;
    std::size_t cache_misses_ = 0;
    /// Golden-run cache shared across every campaign this evaluator
    /// executes: batches re-running the same cases (e.g. input + severe
    /// ground truth, or successive search iterations) reuse the captured
    /// golden data instead of re-running fault-free campaigns.
    fi::GoldenCache golden_cache_;
};

}  // namespace epea::opt
