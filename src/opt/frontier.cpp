#include "opt/frontier.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "campaign/json.hpp"
#include "opt/types.hpp"

namespace epea::opt {

namespace {
constexpr double kEps = 1e-12;
}

bool dominates(const FrontierPoint& a, const FrontierPoint& b) {
    const bool ge_cov = a.coverage >= b.coverage - kEps;
    const bool le_mem = a.cost.memory <= b.cost.memory + kEps;
    const bool le_time = a.cost.time <= b.cost.time + kEps;
    if (!(ge_cov && le_mem && le_time)) return false;
    return a.coverage > b.coverage + kEps || a.cost.memory < b.cost.memory - kEps ||
           a.cost.time < b.cost.time - kEps;
}

void mark_frontier(std::vector<FrontierPoint>& points) {
    for (FrontierPoint& p : points) {
        p.on_frontier = true;
        for (const FrontierPoint& q : points) {
            if (&q != &p && dominates(q, p)) {
                p.on_frontier = false;
                break;
            }
        }
    }
}

double coverage_slack(const std::vector<FrontierPoint>& points, const FrontierPoint& p) {
    double best = p.coverage;
    for (const FrontierPoint& q : points) {
        if (!q.on_frontier) continue;
        if (q.cost.memory <= p.cost.memory + kEps && q.cost.time <= p.cost.time + kEps) {
            best = std::max(best, q.coverage);
        }
    }
    return best - p.coverage;
}

std::vector<FrontierPoint> Frontier::frontier_points() const {
    std::vector<FrontierPoint> out;
    for (const FrontierPoint& p : points) {
        if (p.on_frontier) out.push_back(p);
    }
    std::sort(out.begin(), out.end(), [](const FrontierPoint& a, const FrontierPoint& b) {
        if (a.cost.memory != b.cost.memory) return a.cost.memory < b.cost.memory;
        return a.coverage < b.coverage;
    });
    return out;
}

Frontier enumerate_frontier(const std::vector<Candidate>& candidates,
                            const BenefitFn& benefit, std::size_t max_candidates) {
    const std::size_t n = candidates.size();
    if (n > max_candidates) {
        throw std::invalid_argument(
            "enumerate_frontier: " + std::to_string(n) + " candidates exceed " +
            std::to_string(max_candidates) + " (2^n subsets infeasible)");
    }
    Frontier result;
    const std::size_t total = (std::size_t{1} << n) - 1;
    result.points.reserve(total);
    for (std::size_t mask = 1; mask <= total; ++mask) {
        FrontierPoint p;
        std::vector<std::size_t> subset;
        for (std::size_t i = 0; i < n; ++i) {
            if (mask & (std::size_t{1} << i)) {
                subset.push_back(i);
                p.signals.push_back(candidates[i].name);
                p.cost = p.cost + candidates[i].cost;
            }
        }
        p.coverage = benefit(subset);
        result.points.push_back(std::move(p));
    }
    mark_frontier(result.points);
    return result;
}

void write_frontier_csv(std::ostream& os, const Frontier& frontier) {
    os << "subset,label,size,coverage,memory,time,on_frontier\n";
    for (const FrontierPoint& p : frontier.points) {
        os << canonical_subset(p.signals) << ',' << p.label << ',' << p.signals.size()
           << ',' << p.coverage << ',' << p.cost.memory << ',' << p.cost.time << ','
           << (p.on_frontier ? 1 : 0) << '\n';
    }
}

void write_frontier_json(std::ostream& os, const Frontier& frontier) {
    campaign::JsonArray points;
    for (const FrontierPoint& p : frontier.points) {
        campaign::JsonObject o;
        campaign::JsonArray signals;
        for (const std::string& s : p.signals) signals.emplace_back(s);
        o["signals"] = std::move(signals);
        if (!p.label.empty()) o["label"] = p.label;
        o["coverage"] = p.coverage;
        o["memory"] = p.cost.memory;
        o["time"] = p.cost.time;
        o["on_frontier"] = p.on_frontier;
        points.emplace_back(std::move(o));
    }
    campaign::JsonObject root;
    root["points"] = std::move(points);
    os << campaign::JsonValue(std::move(root)).dump() << '\n';
}

void write_frontier_dot(std::ostream& os, const Frontier& frontier,
                        const std::string& title) {
    // Scatter in (memory, coverage) space rendered with pinned node
    // positions — the same neato-based convention as fig5/fig6.
    double max_mem = 1.0;
    for (const FrontierPoint& p : frontier.points) {
        max_mem = std::max(max_mem, p.cost.memory);
    }
    const double x_scale = 8.0 / max_mem;  // inches
    const double y_scale = 5.0;

    os << "graph frontier {\n";
    os << "  label=\"" << title << "\";\n";
    os << "  labelloc=top;\n";
    os << "  node [shape=circle, width=0.12, fixedsize=true, label=\"\"];\n";

    std::size_t id = 0;
    std::vector<std::pair<double, std::size_t>> frontier_order;
    for (const FrontierPoint& p : frontier.points) {
        const double x = p.cost.memory * x_scale;
        const double y = p.coverage * y_scale;
        os << "  p" << id << " [pos=\"" << x << ',' << y << "!\"";
        if (p.on_frontier) {
            os << ", style=filled, fillcolor=black";
            frontier_order.emplace_back(p.cost.memory, id);
        } else {
            os << ", color=gray60";
        }
        if (!p.label.empty()) {
            os << ", xlabel=\"" << p.label << "\", shape=doublecircle, width=0.16";
        }
        os << "];\n";
        ++id;
    }

    std::sort(frontier_order.begin(), frontier_order.end());
    for (std::size_t i = 1; i < frontier_order.size(); ++i) {
        os << "  p" << frontier_order[i - 1].second << " -- p"
           << frontier_order[i].second << " [color=black];\n";
    }

    os << "  // axes: x = memory [bytes] (max " << max_mem << "), y = coverage\n";
    os << "}\n";
}

}  // namespace epea::opt
