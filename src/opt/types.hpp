// Shared vocabulary of the placement optimizer: which error model a
// benefit is measured under, and the canonical (order-independent) string
// form of an EA-location subset used as cache key and report label.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace epea::opt {

/// The error models the optimizer can price a placement against (§4.1 /
/// §7 of the paper): input — single bit flips in system input signals
/// (error model A, Table 4); severe — periodic bit flips anywhere in RAM
/// and stack (Fig 3, the §10 motivation).
enum class ErrorModel : std::uint8_t { kInput, kSevere };

[[nodiscard]] const char* to_string(ErrorModel model);
[[nodiscard]] ErrorModel error_model_from_string(const std::string& s);

/// Sorted, "+"-joined signal names: the identity of a subset regardless
/// of selection order. Used for cache keys and display.
[[nodiscard]] std::string canonical_subset(std::vector<std::string> signals);

}  // namespace epea::opt
