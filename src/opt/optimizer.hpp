// PlacementOptimizer — the subsystem facade tying cost model, benefit
// model and search together (DESIGN.md §8). Construct one of:
//
//  - analytic(pm, model):    benefits from the fast compositional
//                            estimator over a permeability matrix;
//  - ground_truth(options):  benefits measured by sharded fault-injection
//                            campaigns, memoized on disk.
//
// and ask for a budgeted optimum (optimize), the full Pareto frontier
// (frontier), or a report validating the paper's placements against the
// frontier (explain).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "epic/matrix.hpp"
#include "opt/benefit.hpp"
#include "opt/evaluator.hpp"
#include "opt/frontier.hpp"
#include "opt/search.hpp"

namespace epea::opt {

/// A named placement from the paper, for labelling frontier points.
struct ReferenceSet {
    std::string label;
    std::vector<std::string> signals;
};

/// The paper's placements on the arrestment target: the heuristic EH-set
/// (§5.1), the propagation-analysis PA-set (§5.3) and the §10 extended
/// set (PA plus the globally-exposed ms_slot_nbr).
[[nodiscard]] std::vector<ReferenceSet> arrestment_reference_sets();

class PlacementOptimizer {
public:
    /// Analytic benefits over `pm` for the EA-carrying signals of the
    /// arrestment target. `pm` must outlive the optimizer.
    [[nodiscard]] static PlacementOptimizer analytic(const epic::PermeabilityMatrix& pm,
                                                     ErrorModel model);

    /// Analytic benefits over `pm` for an explicit candidate list (used
    /// for synthetic systems, where candidates come from
    /// epic::ea_candidate_signals).
    [[nodiscard]] static PlacementOptimizer analytic(
        const epic::PermeabilityMatrix& pm, ErrorModel model,
        const std::vector<model::SignalId>& candidates);

    /// Benefits from a caller-precomputed detection matrix
    /// D[site][candidate] (the analytic-engine mode: src/analytic builds
    /// D from its fixpoint reach and injects it here, keeping opt free of
    /// an analytic dependency). Every candidate must carry an EA cost
    /// (no boolean signals).
    [[nodiscard]] static PlacementOptimizer with_detection(
        const model::SystemModel& system,
        const std::vector<model::SignalId>& candidates,
        std::vector<std::vector<double>> detect);

    /// Campaign-backed benefits, cached under options.dir.
    [[nodiscard]] static PlacementOptimizer ground_truth(EvaluatorOptions options);

    [[nodiscard]] const std::vector<Candidate>& candidates() const noexcept {
        return candidates_;
    }

    /// Benefit of an explicit placement (signal names).
    [[nodiscard]] double coverage(const std::vector<std::string>& signals);

    /// Installs certificate-derived prune hints (prove::structural_hints)
    /// for subsequent optimize() calls. Hint rows must align with
    /// candidates(); a mismatched hint set is ignored by the searches.
    /// Only meaningful for analytic benefits — ground-truth campaigns may
    /// disagree with the structural graph, so callers never attach there.
    void set_structural_hints(StructuralHints hints) { hints_ = std::move(hints); }

    /// Clears hints: optimize() runs unpruned (the CI soundness gate
    /// compares this against the hinted run).
    void clear_structural_hints() { hints_ = StructuralHints{}; }

    /// Best placement within the budget: exact branch-and-bound when the
    /// candidate count allows it, greedy marginal-gain-per-cost beyond.
    [[nodiscard]] SearchResult optimize(const SearchOptions& options = {});

    /// Full subset-lattice Pareto frontier, with the paper's reference
    /// sets labelled where they appear. Ground-truth mode batches every
    /// uncached subset into a single campaign.
    [[nodiscard]] Frontier frontier();

    /// Human-readable frontier report: each reference set's coverage,
    /// cost, frontier membership and coverage slack (distance below the
    /// frontier at its own cost), plus the PA/EH cost ratio the paper's
    /// ~40 % resource-saving claim rests on.
    [[nodiscard]] std::string explain(const Frontier& frontier) const;

    /// Campaigns run so far (always 0 in analytic mode).
    [[nodiscard]] std::size_t campaigns_executed() const noexcept {
        return evaluator_ ? evaluator_->campaigns_executed() : 0;
    }
    [[nodiscard]] CampaignEvaluator* evaluator() noexcept { return evaluator_.get(); }

private:
    PlacementOptimizer() = default;

    /// In ground-truth mode, measure the whole lattice in one campaign so
    /// subsequent benefit lookups are pure cache reads.
    void ensure_ground_truth_lattice();
    [[nodiscard]] BenefitFn benefit_fn();

    std::vector<Candidate> candidates_;
    StructuralHints hints_;
    std::shared_ptr<AnalyticBenefit> analytic_;
    std::shared_ptr<CampaignEvaluator> evaluator_;
    /// canonical subset -> measured coverage (ground-truth mode).
    std::map<std::string, double> measured_;
    bool lattice_measured_ = false;
};

}  // namespace epea::opt
