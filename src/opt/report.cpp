#include "opt/report.hpp"

#include <algorithm>

#include "util/json.hpp"

namespace epea::opt {

std::string optimize_result_json(const SearchResult& result,
                                 const std::vector<Candidate>& candidates,
                                 ErrorModel model,
                                 const std::string& benefit_mode) {
    std::vector<std::string> names = result.selected_names(candidates);
    std::sort(names.begin(), names.end());

    util::JsonArray selected;
    for (const std::string& name : names) selected.emplace_back(name);

    util::JsonObject cost;
    cost.emplace("memory", util::JsonValue(result.cost.memory));
    cost.emplace("time", util::JsonValue(result.cost.time));

    util::JsonObject o;
    o.emplace("benefit", util::JsonValue(benefit_mode));
    o.emplace("error_model", util::JsonValue(to_string(model)));
    o.emplace("selected", util::JsonValue(std::move(selected)));
    o.emplace("coverage", util::JsonValue(result.coverage));
    o.emplace("cost", util::JsonValue(std::move(cost)));
    o.emplace("evaluations", util::JsonValue(result.evaluations));
    o.emplace("nodes", util::JsonValue(result.nodes));
    o.emplace("structural_prunes", util::JsonValue(result.structural_prunes));
    o.emplace("exact", util::JsonValue(result.exact));
    return util::JsonValue(std::move(o)).dump() + "\n";
}

}  // namespace epea::opt
