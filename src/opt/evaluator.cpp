#include "opt/evaluator.hpp"

#include <filesystem>
#include <map>
#include <stdexcept>

#include "campaign/executor.hpp"
#include "campaign/spec.hpp"
#include "exp/arrestment_experiments.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace epea::opt {

namespace {

/// Signal name -> EA name on the arrestment target (EA1..EA7).
const std::map<std::string, std::string>& signal_to_ea() {
    static const std::map<std::string, std::string> map = [] {
        std::map<std::string, std::string> m;
        for (const auto& [ea_name, signal_name] : exp::arrestment_ea_signals()) {
            m[signal_name] = ea_name;
        }
        return m;
    }();
    return map;
}

std::string batch_fingerprint(const std::vector<std::string>& keys) {
    // FNV-1a over the sorted keys: a deterministic campaign-directory
    // suffix, so re-running the identical batch resumes the same campaign.
    std::uint64_t h = 1469598103934665603ULL;
    for (const std::string& k : keys) {
        for (const char c : k) {
            h ^= static_cast<std::uint8_t>(c);
            h *= 1099511628211ULL;
        }
        h ^= '\n';
        h *= 1099511628211ULL;
    }
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
    return std::string(buf, 16);
}

}  // namespace

CampaignEvaluator::CampaignEvaluator(EvaluatorOptions options)
    : options_(std::move(options)),
      cache_((std::filesystem::create_directories(options_.dir), options_.dir)) {
    if (options_.dir.empty()) {
        throw std::invalid_argument("CampaignEvaluator: options.dir must be set");
    }
}

std::string CampaignEvaluator::subset_key(const std::vector<std::string>& subset) const {
    return SubsetCache::key(options_.model, options_.cases, options_.times_per_bit,
                            options_.seed, options_.severe_period, subset);
}

std::vector<CacheEntry> CampaignEvaluator::evaluate(
    const std::vector<std::vector<std::string>>& subsets) {
    obs::Span span("opt.evaluate", subsets.size());
    auto& reg = obs::MetricsRegistry::global();
    std::vector<CacheEntry> results(subsets.size());
    // Deduplicated cache misses, keyed canonically; values are the EA-name
    // SubsetSpecs the campaign will score.
    std::map<std::string, exp::SubsetSpec> missing;

    for (std::size_t i = 0; i < subsets.size(); ++i) {
        if (subsets[i].empty()) continue;  // empty placement detects nothing
        const std::string key = subset_key(subsets[i]);
        reg.counter("opt.subset.evaluated").add();
        if (const auto hit = cache_.lookup(key)) {
            ++cache_hits_;
            reg.counter("opt.subset.cache_hit").add();
            results[i] = *hit;
            continue;
        }
        ++cache_misses_;
        reg.counter("opt.subset.cache_miss").add();
        if (missing.count(key)) continue;
        exp::SubsetSpec spec;
        spec.name = key;
        for (const std::string& signal : subsets[i]) {
            const auto it = signal_to_ea().find(signal);
            if (it == signal_to_ea().end()) {
                throw std::invalid_argument(
                    "CampaignEvaluator: no EA guards signal '" + signal +
                    "' on the arrestment target");
            }
            spec.ea_names.push_back(it->second);
        }
        missing.emplace(key, std::move(spec));
    }

    if (!missing.empty()) {
        campaign::CampaignSpec spec;
        spec.kind = options_.model == ErrorModel::kInput
                        ? campaign::CampaignKind::kInput
                        : campaign::CampaignKind::kSevere;
        spec.name = "opt-eval";
        spec.case_ids.clear();
        for (std::size_t c = 0; c < options_.cases; ++c) spec.case_ids.push_back(c);
        spec.times_per_bit = options_.times_per_bit;
        spec.severe_period = options_.severe_period;
        spec.seed = options_.seed;
        spec.shards = options_.shards;
        spec.subsets.clear();
        std::vector<std::string> batch_keys;
        for (auto& [key, subset_spec] : missing) {
            batch_keys.push_back(key);
            spec.subsets.push_back(subset_spec);
        }

        const std::string campaign_dir = options_.dir + "/eval-" +
                                         to_string(options_.model) + "-" +
                                         batch_fingerprint(batch_keys);
        campaign::CampaignExecutor executor(campaign_dir, spec);
        campaign::ExecutorOptions exec;
        exec.threads = options_.threads;
        exec.echo_events = options_.echo_events;
        exec.use_fastpath = options_.use_fastpath;
        exec.use_batch = options_.use_batch;
        exec.batch_width = options_.batch_width;
        exec.golden_cache = &golden_cache_;  // reused across batches
        executor.run(exec);
        ++campaigns_executed_;
        reg.counter("opt.campaigns.executed").add();

        if (options_.model == ErrorModel::kInput) {
            const exp::InputCoverageResult merged = executor.merged_input();
            for (std::size_t s = 0; s < merged.subset_names.size(); ++s) {
                CacheEntry e;
                e.detected = merged.all.detected_per_subset.at(s);
                e.active = merged.all.active;
                e.runs = merged.all.injected;
                e.coverage = e.active ? static_cast<double>(e.detected) /
                                            static_cast<double>(e.active)
                                      : 0.0;
                cache_.store(merged.subset_names[s], e);
            }
        } else {
            const exp::SevereCoverageResult merged = executor.merged_severe();
            for (const exp::SevereSetResult& set : merged.sets) {
                const exp::SevereCell& total = set.cells[2][0];
                CacheEntry e;
                e.detected = total.detected;
                e.active = total.n;
                e.runs = merged.runs;
                e.coverage = total.coverage();
                cache_.store(set.set_name, e);
            }
        }
        cache_.flush();
    }

    for (std::size_t i = 0; i < subsets.size(); ++i) {
        if (subsets[i].empty()) continue;
        if (results[i].runs == 0 && results[i].active == 0) {
            const auto entry = cache_.lookup(subset_key(subsets[i]));
            if (!entry) {
                throw std::logic_error(
                    "CampaignEvaluator: campaign did not produce subset '" +
                    canonical_subset(subsets[i]) + "'");
            }
            results[i] = *entry;
        }
    }
    return results;
}

double CampaignEvaluator::coverage(const std::vector<std::string>& subset) {
    return evaluate({subset}).at(0).coverage;
}

}  // namespace epea::opt
