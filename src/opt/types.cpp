#include "opt/types.hpp"

#include <algorithm>
#include <stdexcept>

namespace epea::opt {

const char* to_string(ErrorModel model) {
    switch (model) {
        case ErrorModel::kInput: return "input";
        case ErrorModel::kSevere: return "severe";
    }
    return "?";
}

ErrorModel error_model_from_string(const std::string& s) {
    if (s == "input") return ErrorModel::kInput;
    if (s == "severe") return ErrorModel::kSevere;
    throw std::runtime_error("unknown error model: '" + s +
                             "' (expected 'input' or 'severe')");
}

std::string canonical_subset(std::vector<std::string> signals) {
    std::sort(signals.begin(), signals.end());
    std::string out;
    for (std::size_t i = 0; i < signals.size(); ++i) {
        if (i) out += '+';
        out += signals[i];
    }
    return out;
}

}  // namespace epea::opt
