// SystemModel — the static structure of a modular software system: the
// graph of modules and signals over which all propagation/effect analysis
// operates. Purely structural; run-time behaviour lives in epea::runtime.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "model/ids.hpp"
#include "model/module.hpp"
#include "model/signal.hpp"

namespace epea::model {

/// Immutable-after-build description of a modular software system.
///
/// Invariants (checked by validate()):
///  - names of signals and of modules are unique and non-empty;
///  - every intermediate/system-output signal has exactly one producer port;
///  - system-input signals have no producer;
///  - every port references a valid signal.
/// Cycles are allowed (the target system feeds signal `i` back into CALC).
class SystemModel {
public:
    /// Adds a signal; returns its id. Names must be unique.
    SignalId add_signal(SignalSpec spec);

    /// Adds a module; port signal ids must already exist.
    ModuleId add_module(ModuleSpec spec);

    // -- lookup -------------------------------------------------------------

    [[nodiscard]] std::size_t signal_count() const noexcept { return signals_.size(); }
    [[nodiscard]] std::size_t module_count() const noexcept { return modules_.size(); }

    [[nodiscard]] const SignalSpec& signal(SignalId id) const;
    [[nodiscard]] const ModuleSpec& module(ModuleId id) const;

    [[nodiscard]] std::optional<SignalId> find_signal(std::string_view name) const;
    [[nodiscard]] std::optional<ModuleId> find_module(std::string_view name) const;

    /// Throwing variants for call sites where absence is a logic error.
    [[nodiscard]] SignalId signal_id(std::string_view name) const;
    [[nodiscard]] ModuleId module_id(std::string_view name) const;

    [[nodiscard]] const std::string& signal_name(SignalId id) const { return signal(id).name; }
    [[nodiscard]] const std::string& module_name(ModuleId id) const { return module(id).name; }

    // -- connectivity -------------------------------------------------------

    /// The module output port that produces `id`, or nullopt for system
    /// inputs (produced by the environment).
    [[nodiscard]] std::optional<PortRef> producer_of(SignalId id) const;

    /// All module input ports that consume `id` (possibly empty, e.g.
    /// ms_slot_nbr is consumed by the scheduler, not by a module).
    [[nodiscard]] std::span<const PortRef> consumers_of(SignalId id) const;

    /// All signals with the given role, in id order.
    [[nodiscard]] std::vector<SignalId> signals_with_role(SignalRole role) const;

    /// Iteration helpers.
    [[nodiscard]] std::vector<SignalId> all_signals() const;
    [[nodiscard]] std::vector<ModuleId> all_modules() const;

    /// Total number of module input/output pairs in the system.
    [[nodiscard]] std::size_t pair_count() const noexcept;

    // -- validation ---------------------------------------------------------

    /// Returns human-readable descriptions of every violated invariant;
    /// empty means the model is well-formed.
    [[nodiscard]] std::vector<std::string> validate() const;

    /// Throws std::invalid_argument listing all problems if invalid.
    void validate_or_throw() const;

private:
    std::vector<SignalSpec> signals_;
    std::vector<ModuleSpec> modules_;
    std::unordered_map<std::string, SignalId> signal_by_name_;
    std::unordered_map<std::string, ModuleId> module_by_name_;
    // Derived connectivity, rebuilt incrementally in add_module().
    std::vector<std::optional<PortRef>> producer_;        // per signal
    std::vector<std::vector<PortRef>> consumers_;         // per signal
};

}  // namespace epea::model
