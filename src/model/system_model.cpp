#include "model/system_model.hpp"

#include <sstream>
#include <stdexcept>

namespace epea::model {

SignalId SystemModel::add_signal(SignalSpec spec) {
    const SignalId id{static_cast<std::uint32_t>(signals_.size())};
    if (spec.name.empty()) throw std::invalid_argument("signal name must be non-empty");
    if (signal_by_name_.contains(spec.name)) {
        throw std::invalid_argument("duplicate signal name: " + spec.name);
    }
    if (spec.width == 0 || spec.width > 32) {
        throw std::invalid_argument("signal width must be in [1,32]: " + spec.name);
    }
    signal_by_name_.emplace(spec.name, id);
    signals_.push_back(std::move(spec));
    producer_.emplace_back(std::nullopt);
    consumers_.emplace_back();
    return id;
}

ModuleId SystemModel::add_module(ModuleSpec spec) {
    const ModuleId id{static_cast<std::uint32_t>(modules_.size())};
    if (spec.name.empty()) throw std::invalid_argument("module name must be non-empty");
    if (module_by_name_.contains(spec.name)) {
        throw std::invalid_argument("duplicate module name: " + spec.name);
    }
    auto check = [&](SignalId s) {
        if (!s.valid() || s.index() >= signals_.size()) {
            throw std::invalid_argument("module " + spec.name +
                                        " references unknown signal id");
        }
    };
    for (SignalId s : spec.inputs) check(s);
    for (std::uint32_t p = 0; p < spec.outputs.size(); ++p) {
        const SignalId s = spec.outputs[p];
        check(s);
        if (producer_[s.index()].has_value()) {
            throw std::invalid_argument("signal " + signals_[s.index()].name +
                                        " already has a producer");
        }
        producer_[s.index()] = PortRef{id, p};
    }
    for (std::uint32_t p = 0; p < spec.inputs.size(); ++p) {
        consumers_[spec.inputs[p].index()].push_back(PortRef{id, p});
    }
    module_by_name_.emplace(spec.name, id);
    modules_.push_back(std::move(spec));
    return id;
}

const SignalSpec& SystemModel::signal(SignalId id) const {
    if (!id.valid() || id.index() >= signals_.size()) {
        throw std::out_of_range("invalid SignalId");
    }
    return signals_[id.index()];
}

const ModuleSpec& SystemModel::module(ModuleId id) const {
    if (!id.valid() || id.index() >= modules_.size()) {
        throw std::out_of_range("invalid ModuleId");
    }
    return modules_[id.index()];
}

std::optional<SignalId> SystemModel::find_signal(std::string_view name) const {
    const auto it = signal_by_name_.find(std::string{name});
    return it == signal_by_name_.end() ? std::nullopt : std::optional{it->second};
}

std::optional<ModuleId> SystemModel::find_module(std::string_view name) const {
    const auto it = module_by_name_.find(std::string{name});
    return it == module_by_name_.end() ? std::nullopt : std::optional{it->second};
}

SignalId SystemModel::signal_id(std::string_view name) const {
    if (auto id = find_signal(name)) return *id;
    throw std::invalid_argument("unknown signal: " + std::string{name});
}

ModuleId SystemModel::module_id(std::string_view name) const {
    if (auto id = find_module(name)) return *id;
    throw std::invalid_argument("unknown module: " + std::string{name});
}

std::optional<PortRef> SystemModel::producer_of(SignalId id) const {
    if (!id.valid() || id.index() >= producer_.size()) {
        throw std::out_of_range("invalid SignalId");
    }
    return producer_[id.index()];
}

std::span<const PortRef> SystemModel::consumers_of(SignalId id) const {
    if (!id.valid() || id.index() >= consumers_.size()) {
        throw std::out_of_range("invalid SignalId");
    }
    return consumers_[id.index()];
}

std::vector<SignalId> SystemModel::signals_with_role(SignalRole role) const {
    std::vector<SignalId> out;
    for (std::size_t i = 0; i < signals_.size(); ++i) {
        if (signals_[i].role == role) out.push_back(SignalId{static_cast<std::uint32_t>(i)});
    }
    return out;
}

std::vector<SignalId> SystemModel::all_signals() const {
    std::vector<SignalId> out;
    out.reserve(signals_.size());
    for (std::size_t i = 0; i < signals_.size(); ++i) {
        out.push_back(SignalId{static_cast<std::uint32_t>(i)});
    }
    return out;
}

std::vector<ModuleId> SystemModel::all_modules() const {
    std::vector<ModuleId> out;
    out.reserve(modules_.size());
    for (std::size_t i = 0; i < modules_.size(); ++i) {
        out.push_back(ModuleId{static_cast<std::uint32_t>(i)});
    }
    return out;
}

std::size_t SystemModel::pair_count() const noexcept {
    std::size_t total = 0;
    for (const auto& m : modules_) total += m.pair_count();
    return total;
}

std::vector<std::string> SystemModel::validate() const {
    std::vector<std::string> problems;
    for (std::size_t i = 0; i < signals_.size(); ++i) {
        const auto& s = signals_[i];
        const bool has_producer = producer_[i].has_value();
        if (s.role == SignalRole::kSystemInput && has_producer) {
            problems.push_back("system input '" + s.name + "' has a module producer");
        }
        if (s.role != SignalRole::kSystemInput && !has_producer) {
            problems.push_back("signal '" + s.name + "' has no producer");
        }
        if (s.role == SignalRole::kSystemOutput && !consumers_[i].empty()) {
            problems.push_back("system output '" + s.name +
                               "' is consumed by a module (should exit the system)");
        }
    }
    for (const auto& m : modules_) {
        if (m.inputs.empty()) problems.push_back("module '" + m.name + "' has no inputs");
        if (m.outputs.empty()) problems.push_back("module '" + m.name + "' has no outputs");
    }
    return problems;
}

void SystemModel::validate_or_throw() const {
    const auto problems = validate();
    if (problems.empty()) return;
    std::ostringstream msg;
    msg << "invalid SystemModel:";
    for (const auto& p : problems) msg << "\n  - " << p;
    throw std::invalid_argument(msg.str());
}

}  // namespace epea::model
