// Signal descriptors. A signal is an abstract data channel between
// modules (shared variable, message, register, ...) — the unit at which
// the paper's analysis measures exposure, impact and criticality, and at
// which executable assertions are attached.
#pragma once

#include <cstdint>
#include <string>

#include "model/ids.hpp"

namespace epea::model {

/// Where a signal sits in the system boundary (paper §3/§5.2).
enum class SignalRole : std::uint8_t {
    kSystemInput,   ///< produced by the environment (sensor/HW register)
    kIntermediate,  ///< produced and consumed by software modules
    kSystemOutput,  ///< consumed by the environment (actuator register)
};

/// Value class of a signal; drives which EA type is applicable
/// (the paper's chosen EAs are "not geared at boolean values").
enum class SignalKind : std::uint8_t {
    kContinuous,  ///< bounded, rate-limited numeric (e.g. SetValue)
    kMonotonic,   ///< non-decreasing counter (e.g. pulscnt, mscnt)
    kDiscrete,    ///< small enumerated domain (e.g. ms_slot_nbr)
    kBoolean,     ///< two-valued flag (e.g. slow_speed, stopped)
};

[[nodiscard]] constexpr const char* to_string(SignalRole role) noexcept {
    switch (role) {
        case SignalRole::kSystemInput: return "input";
        case SignalRole::kIntermediate: return "intermediate";
        case SignalRole::kSystemOutput: return "output";
    }
    return "?";
}

[[nodiscard]] constexpr const char* to_string(SignalKind kind) noexcept {
    switch (kind) {
        case SignalKind::kContinuous: return "continuous";
        case SignalKind::kMonotonic: return "monotonic";
        case SignalKind::kDiscrete: return "discrete";
        case SignalKind::kBoolean: return "boolean";
    }
    return "?";
}

/// Static description of a signal.
struct SignalSpec {
    std::string name;
    SignalRole role = SignalRole::kIntermediate;
    SignalKind kind = SignalKind::kContinuous;
    /// Significant bit width of the carried value (1..32). Hardware
    /// registers of the target are 8 or 16 bits; bit-flip error models
    /// respect this width.
    std::uint8_t width = 16;
};

}  // namespace epea::model
