// Module descriptors. A module is a generalized black box with numbered
// input and output ports, each bound to a signal (paper §3, Fig 2).
#pragma once

#include <string>
#include <vector>

#include "model/ids.hpp"

namespace epea::model {

/// Static description of a module: its name and the signals bound to its
/// input/output ports, in port order.
struct ModuleSpec {
    std::string name;
    std::vector<SignalId> inputs;   ///< inputs[p]  = signal on input port p
    std::vector<SignalId> outputs;  ///< outputs[p] = signal on output port p

    [[nodiscard]] std::size_t input_count() const noexcept { return inputs.size(); }
    [[nodiscard]] std::size_t output_count() const noexcept { return outputs.size(); }
    /// Number of input/output pairs — the number of permeability values
    /// this module contributes (Table 1 has 25 across the target).
    [[nodiscard]] std::size_t pair_count() const noexcept {
        return inputs.size() * outputs.size();
    }
};

}  // namespace epea::model
