#include "model/dot.hpp"

#include <algorithm>
#include <cstdio>

namespace epea::model {

namespace {

std::string fmt(double v, int precision = 3) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    return buf;
}

/// Node name for a module.
std::string module_node(const SystemModel& m, ModuleId id) {
    return "mod_" + m.module_name(id);
}

/// Node name for an environment-side endpoint of a signal.
std::string env_node(const std::string& signal_name) { return "env_" + signal_name; }

}  // namespace

void write_dot(std::ostream& out, const SystemModel& model, const DotOptions& options) {
    out << "digraph \"" << options.graph_name << "\" {\n";
    if (options.rankdir_lr) out << "  rankdir=LR;\n";
    out << "  node [fontname=\"Helvetica\"];\n";
    out << "  edge [fontname=\"Helvetica\", fontsize=10];\n";

    for (ModuleId mid : model.all_modules()) {
        out << "  " << module_node(model, mid) << " [shape=box, label=\""
            << model.module_name(mid) << "\"];\n";
    }

    // Environment endpoints for system inputs/outputs and dangling signals.
    for (SignalId sid : model.all_signals()) {
        const auto& spec = model.signal(sid);
        const bool dangling_intermediate =
            spec.role == SignalRole::kIntermediate && model.consumers_of(sid).empty();
        if (spec.role == SignalRole::kSystemInput) {
            out << "  " << env_node(spec.name) << " [shape=ellipse, label=\""
                << spec.name << "\\n(source)\"];\n";
        } else if (spec.role == SignalRole::kSystemOutput) {
            out << "  " << env_node(spec.name) << " [shape=ellipse, label=\""
                << spec.name << "\\n(actuator)\"];\n";
        } else if (dangling_intermediate) {
            out << "  " << env_node(spec.name)
                << " [shape=circle, width=0.15, label=\"\"];\n";
        }
    }

    // Determine the scaling for weighted edges.
    double max_weight = 0.0;
    if (options.signal_weight) {
        for (SignalId sid : model.all_signals()) {
            if (const auto w = options.signal_weight(sid)) {
                max_weight = std::max(max_weight, *w);
            }
        }
    }

    auto edge_attrs = [&](SignalId sid) -> std::string {
        const auto& name = model.signal_name(sid);
        std::string attrs = "label=\"" + name;
        std::string style;
        if (options.signal_weight) {
            const auto w = options.signal_weight(sid);
            if (!w.has_value()) {
                style = ", style=\"dotted\"";
            } else if (*w <= 0.0) {
                style = ", style=\"dashed\"";
                attrs += " (0)";
            } else {
                const double rel = max_weight > 0.0 ? *w / max_weight : 0.0;
                const double pen = 1.0 + rel * (options.max_penwidth - 1.0);
                style = ", penwidth=" + fmt(pen, 2);
                attrs += " (" + fmt(*w) + ")";
            }
        }
        attrs += "\"" + style;
        return attrs;
    };

    for (SignalId sid : model.all_signals()) {
        const auto& spec = model.signal(sid);
        const auto producer = model.producer_of(sid);
        const std::string from = producer.has_value()
                                     ? module_node(model, producer->module)
                                     : env_node(spec.name);
        const auto consumers = model.consumers_of(sid);
        if (consumers.empty()) {
            if (spec.role != SignalRole::kSystemInput) {
                out << "  " << from << " -> " << env_node(spec.name) << " ["
                    << edge_attrs(sid) << "];\n";
            }
            continue;
        }
        for (const PortRef& c : consumers) {
            out << "  " << from << " -> " << module_node(model, c.module) << " ["
                << edge_attrs(sid) << "];\n";
        }
    }

    out << "}\n";
}

}  // namespace epea::model
