// Graphviz DOT export of a SystemModel, optionally annotated with
// per-signal weights — used to regenerate the exposure/impact profile
// figures (Figs 5 and 6 of the paper) as machine-renderable graphs.
#pragma once

#include <functional>
#include <optional>
#include <ostream>
#include <string>

#include "model/system_model.hpp"

namespace epea::model {

/// Options controlling DOT rendering.
struct DotOptions {
    std::string graph_name = "system";
    /// Optional per-signal weight (e.g. exposure or impact). Signals with
    /// no value (nullopt) are drawn dash-dotted, zero-valued dashed, and
    /// positive values with pen width scaled into [1, max_penwidth] —
    /// mirroring the line-thickness convention of Figs 5/6.
    std::function<std::optional<double>(SignalId)> signal_weight;
    double max_penwidth = 6.0;
    bool rankdir_lr = true;
};

/// Writes the model as a DOT digraph: modules are boxes, system inputs and
/// outputs are ellipses, signals become labelled edges.
void write_dot(std::ostream& out, const SystemModel& model, const DotOptions& options = {});

}  // namespace epea::model
