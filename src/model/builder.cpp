#include "model/builder.hpp"

namespace epea::model {

ModuleBuilder& ModuleBuilder::in(std::string_view signal_name) {
    parent_->modules_[index_].inputs.emplace_back(signal_name);
    return *this;
}

ModuleBuilder& ModuleBuilder::out(std::string_view signal_name) {
    parent_->modules_[index_].outputs.emplace_back(signal_name);
    return *this;
}

SystemBuilder& SystemBuilder::input(std::string name, SignalKind kind, std::uint8_t width) {
    return signal(SignalSpec{std::move(name), SignalRole::kSystemInput, kind, width});
}

SystemBuilder& SystemBuilder::intermediate(std::string name, SignalKind kind,
                                           std::uint8_t width) {
    return signal(SignalSpec{std::move(name), SignalRole::kIntermediate, kind, width});
}

SystemBuilder& SystemBuilder::output(std::string name, SignalKind kind, std::uint8_t width) {
    return signal(SignalSpec{std::move(name), SignalRole::kSystemOutput, kind, width});
}

SystemBuilder& SystemBuilder::signal(SignalSpec spec) {
    signals_.push_back(std::move(spec));
    return *this;
}

ModuleBuilder SystemBuilder::module(std::string name) {
    modules_.push_back(PendingModule{std::move(name), {}, {}});
    return ModuleBuilder{*this, modules_.size() - 1};
}

SystemModel SystemBuilder::build() const {
    SystemModel model;
    for (const auto& s : signals_) model.add_signal(s);
    for (const auto& pm : modules_) {
        ModuleSpec spec;
        spec.name = pm.name;
        spec.inputs.reserve(pm.inputs.size());
        spec.outputs.reserve(pm.outputs.size());
        for (const auto& n : pm.inputs) spec.inputs.push_back(model.signal_id(n));
        for (const auto& n : pm.outputs) spec.outputs.push_back(model.signal_id(n));
        model.add_module(std::move(spec));
    }
    model.validate_or_throw();
    return model;
}

}  // namespace epea::model
