// Fluent construction helper for SystemModel. Lets systems be declared
// close to how Fig 1 of the paper reads:
//
//   SystemBuilder b;
//   b.input("PACNT", SignalKind::kMonotonic, 8);
//   b.intermediate("pulscnt", SignalKind::kMonotonic, 16);
//   b.module("DIST_S").in("PACNT").in("TIC1").in("TCNT")
//        .out("pulscnt").out("slow_speed").out("stopped");
//   SystemModel m = b.build();
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "model/system_model.hpp"

namespace epea::model {

class SystemBuilder;

/// Accumulates the ports of one module; created via SystemBuilder::module.
class ModuleBuilder {
public:
    ModuleBuilder& in(std::string_view signal_name);
    ModuleBuilder& out(std::string_view signal_name);

private:
    friend class SystemBuilder;
    ModuleBuilder(SystemBuilder& parent, std::size_t index)
        : parent_(&parent), index_(index) {}

    SystemBuilder* parent_;
    std::size_t index_;
};

/// Collects signal and module declarations, then materialises and
/// validates a SystemModel in build().
class SystemBuilder {
public:
    SystemBuilder& input(std::string name, SignalKind kind, std::uint8_t width);
    SystemBuilder& intermediate(std::string name, SignalKind kind, std::uint8_t width);
    SystemBuilder& output(std::string name, SignalKind kind, std::uint8_t width);
    SystemBuilder& signal(SignalSpec spec);

    /// Starts a module declaration; ports are added through the returned
    /// ModuleBuilder, in order.
    ModuleBuilder module(std::string name);

    /// Materialises the model and runs full validation (throws on error).
    [[nodiscard]] SystemModel build() const;

private:
    friend class ModuleBuilder;

    struct PendingModule {
        std::string name;
        std::vector<std::string> inputs;
        std::vector<std::string> outputs;
    };

    std::vector<SignalSpec> signals_;
    std::vector<PendingModule> modules_;
};

}  // namespace epea::model
