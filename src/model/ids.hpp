// Strongly-typed identifiers for the system model. Using distinct wrapper
// types prevents accidentally indexing modules with signal ids and vice
// versa — the analysis code juggles all three constantly.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace epea::model {

namespace detail {

template <typename Tag>
struct Id {
    static constexpr std::uint32_t kInvalid = std::numeric_limits<std::uint32_t>::max();

    std::uint32_t value = kInvalid;

    constexpr Id() = default;
    constexpr explicit Id(std::uint32_t v) noexcept : value(v) {}

    [[nodiscard]] constexpr bool valid() const noexcept { return value != kInvalid; }
    [[nodiscard]] constexpr std::size_t index() const noexcept { return value; }

    friend constexpr auto operator<=>(Id, Id) = default;
};

}  // namespace detail

struct ModuleTag {};
struct SignalTag {};

/// Identifies a module within one SystemModel.
using ModuleId = detail::Id<ModuleTag>;
/// Identifies a signal (data channel) within one SystemModel.
using SignalId = detail::Id<SignalTag>;

/// A (module, port index) pair; ports are 0-based internally and rendered
/// 1-based in tables to match the paper's numbering.
struct PortRef {
    ModuleId module;
    std::uint32_t port = 0;

    friend constexpr auto operator<=>(const PortRef&, const PortRef&) = default;
};

}  // namespace epea::model

template <typename Tag>
struct std::hash<epea::model::detail::Id<Tag>> {
    std::size_t operator()(epea::model::detail::Id<Tag> id) const noexcept {
        return std::hash<std::uint32_t>{}(id.value);
    }
};
