#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>

namespace epea::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

// The sink is read on every emitted line; g_has_sink keeps the common
// no-sink case to one relaxed load, the mutex only guards the pointer
// swap against emits racing with (un)install.
std::atomic<bool> g_has_sink{false};
std::mutex g_sink_mutex;
std::shared_ptr<const LogSink> g_sink;
}  // namespace

std::string_view level_name(LogLevel level) noexcept {
    switch (level) {
        case LogLevel::kDebug: return "DEBUG";
        case LogLevel::kInfo: return "INFO";
        case LogLevel::kWarn: return "WARN";
        case LogLevel::kError: return "ERROR";
        case LogLevel::kOff: return "OFF";
    }
    return "?";
}

void set_log_level(LogLevel level) noexcept {
    g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
    return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_sink(LogSink sink) {
    const std::lock_guard<std::mutex> lock(g_sink_mutex);
    if (sink) {
        g_sink = std::make_shared<const LogSink>(std::move(sink));
        g_has_sink.store(true, std::memory_order_release);
    } else {
        g_has_sink.store(false, std::memory_order_release);
        g_sink.reset();
    }
}

namespace detail {

void emit(LogLevel level, std::string_view component, std::string_view message) {
    std::fprintf(stderr, "[%.*s] %.*s: %.*s\n",
                 static_cast<int>(level_name(level).size()), level_name(level).data(),
                 static_cast<int>(component.size()), component.data(),
                 static_cast<int>(message.size()), message.data());
    if (g_has_sink.load(std::memory_order_acquire)) {
        std::shared_ptr<const LogSink> sink;
        {
            const std::lock_guard<std::mutex> lock(g_sink_mutex);
            sink = g_sink;
        }
        if (sink) (*sink)(level, component, message);
    }
}

}  // namespace detail

}  // namespace epea::util
