#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace epea::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

constexpr std::string_view level_name(LogLevel level) noexcept {
    switch (level) {
        case LogLevel::kDebug: return "DEBUG";
        case LogLevel::kInfo: return "INFO";
        case LogLevel::kWarn: return "WARN";
        case LogLevel::kError: return "ERROR";
        case LogLevel::kOff: return "OFF";
    }
    return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
    g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
    return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace detail {

void emit(LogLevel level, std::string_view component, std::string_view message) {
    std::fprintf(stderr, "[%.*s] %.*s: %.*s\n",
                 static_cast<int>(level_name(level).size()), level_name(level).data(),
                 static_cast<int>(component.size()), component.data(),
                 static_cast<int>(message.size()), message.data());
}

}  // namespace detail

}  // namespace epea::util
