// ASCII table rendering used by the bench binaries that regenerate the
// paper's tables — output is aligned, deterministic and diff-friendly.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace epea::util {

/// Column alignment for TextTable.
enum class Align : std::uint8_t { kLeft, kRight };

/// Collects rows of string cells and renders them with per-column widths.
///
///     TextTable t({"Signal", "X_s"});
///     t.add_row({"OutValue", "1.781"});
///     std::cout << t;
class TextTable {
public:
    explicit TextTable(std::vector<std::string> header,
                       std::vector<Align> aligns = {});

    void add_row(std::vector<std::string> cells);
    /// Inserts a horizontal rule before the next added row.
    void add_rule();

    [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

    void render(std::ostream& out) const;

    /// Formats a double with fixed precision (helper for table cells).
    [[nodiscard]] static std::string num(double value, int precision = 3);
    [[nodiscard]] static std::string num(std::uint64_t value);
    [[nodiscard]] static std::string num(std::int64_t value);

private:
    struct Row {
        std::vector<std::string> cells;
        bool rule_before = false;
    };

    std::vector<std::string> header_;
    std::vector<Align> aligns_;
    std::vector<Row> rows_;
    bool pending_rule_ = false;
};

std::ostream& operator<<(std::ostream& out, const TextTable& table);

}  // namespace epea::util
