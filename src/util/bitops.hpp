// Bit-level helpers shared by the fault-injection error models and the
// runtime value representation.
#pragma once

#include <cstdint>

namespace epea::util {

/// Flips bit `bit` (0 = LSB) of `value`, masked to `width` bits.
/// Bits at or above `width` are left untouched so that e.g. an 8-bit
/// hardware register only ever holds 8 significant bits.
[[nodiscard]] constexpr std::uint32_t flip_bit(std::uint32_t value, unsigned bit,
                                               unsigned width = 32) noexcept {
    if (bit >= width) return value;
    return value ^ (std::uint32_t{1} << bit);
}

/// Masks a raw word down to `width` bits.
[[nodiscard]] constexpr std::uint32_t mask_width(std::uint32_t value,
                                                 unsigned width) noexcept {
    if (width >= 32) return value;
    return value & ((std::uint32_t{1} << width) - 1);
}

/// Sign-extends a `width`-bit two's-complement word to 32-bit signed.
[[nodiscard]] constexpr std::int32_t sign_extend(std::uint32_t value,
                                                 unsigned width) noexcept {
    if (width == 0 || width >= 32) return static_cast<std::int32_t>(value);
    const std::uint32_t sign = std::uint32_t{1} << (width - 1);
    const std::uint32_t masked = mask_width(value, width);
    return static_cast<std::int32_t>((masked ^ sign) - sign);
}

}  // namespace epea::util
