// Minimal CSV writer for exporting experiment results to files that can be
// post-processed (plotting, regression baselines).
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace epea::util {

/// Streams rows of comma-separated values with RFC-4180-style quoting.
/// The writer does not own the stream; keep the stream alive while writing.
class CsvWriter {
public:
    explicit CsvWriter(std::ostream& out) : out_(&out) {}

    /// Writes a full row; each cell is quoted only when necessary.
    void row(const std::vector<std::string>& cells);
    void row(std::initializer_list<std::string_view> cells);

    /// Cell-by-cell interface: `cell()` appends, `end_row()` terminates.
    CsvWriter& cell(std::string_view text);
    CsvWriter& cell(double value, int precision = 6);
    CsvWriter& cell(std::int64_t value);
    CsvWriter& cell(std::uint64_t value);
    void end_row();

    [[nodiscard]] static std::string escape(std::string_view text);

private:
    std::ostream* out_;
    bool row_started_ = false;
};

}  // namespace epea::util
