#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace epea::util {

namespace {

[[noreturn]] void fail(const std::string& what) { throw std::runtime_error("json: " + what); }

void append_escaped(std::string& out, const std::string& s) {
    out += '"';
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

struct Parser {
    const std::string& text;
    std::size_t pos = 0;

    void skip_ws() {
        while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) {
            ++pos;
        }
    }
    [[nodiscard]] char peek() {
        skip_ws();
        if (pos >= text.size()) fail("unexpected end of input");
        return text[pos];
    }
    void expect(char c) {
        if (peek() != c) fail(std::string("expected '") + c + "' at offset " +
                              std::to_string(pos));
        ++pos;
    }
    bool consume(char c) {
        if (pos < text.size() && peek() == c) {
            ++pos;
            return true;
        }
        return false;
    }
    bool literal(const char* s) {
        const std::size_t n = std::string(s).size();
        if (text.compare(pos, n, s) == 0) {
            pos += n;
            return true;
        }
        return false;
    }

    JsonValue value() {
        switch (peek()) {
            case '{': return object();
            case '[': return array();
            case '"': return JsonValue(string());
            case 't':
                if (literal("true")) return JsonValue(true);
                fail("bad literal");
            case 'f':
                if (literal("false")) return JsonValue(false);
                fail("bad literal");
            case 'n':
                if (literal("null")) return JsonValue(nullptr);
                fail("bad literal");
            default: return number();
        }
    }

    std::string string() {
        expect('"');
        std::string out;
        while (true) {
            if (pos >= text.size()) fail("unterminated string");
            const char c = text[pos++];
            if (c == '"') break;
            if (c == '\\') {
                if (pos >= text.size()) fail("unterminated escape");
                const char e = text[pos++];
                switch (e) {
                    case '"': out += '"'; break;
                    case '\\': out += '\\'; break;
                    case '/': out += '/'; break;
                    case 'n': out += '\n'; break;
                    case 'r': out += '\r'; break;
                    case 't': out += '\t'; break;
                    case 'u': {
                        if (pos + 4 > text.size()) fail("bad \\u escape");
                        const unsigned code =
                            static_cast<unsigned>(std::stoul(text.substr(pos, 4), nullptr, 16));
                        pos += 4;
                        // Campaign files are ASCII; decode BMP code points naively.
                        if (code < 0x80) {
                            out += static_cast<char>(code);
                        } else if (code < 0x800) {
                            out += static_cast<char>(0xc0 | (code >> 6));
                            out += static_cast<char>(0x80 | (code & 0x3f));
                        } else {
                            out += static_cast<char>(0xe0 | (code >> 12));
                            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
                            out += static_cast<char>(0x80 | (code & 0x3f));
                        }
                        break;
                    }
                    default: fail("bad escape");
                }
            } else {
                out += c;
            }
        }
        return out;
    }

    JsonValue number() {
        const std::size_t start = pos;
        if (consume('-')) {}
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) || text[pos] == '.' ||
                text[pos] == 'e' || text[pos] == 'E' || text[pos] == '+' ||
                text[pos] == '-')) {
            ++pos;
        }
        const std::string tok = text.substr(start, pos - start);
        if (tok.empty() || tok == "-") fail("bad number at offset " + std::to_string(start));
        if (tok.find_first_of(".eE") == std::string::npos) {
            return JsonValue(static_cast<std::int64_t>(std::stoll(tok)));
        }
        return JsonValue(std::stod(tok));
    }

    JsonValue array() {
        expect('[');
        JsonArray out;
        if (consume(']')) return JsonValue(std::move(out));
        while (true) {
            out.push_back(value());
            if (consume(']')) break;
            expect(',');
        }
        return JsonValue(std::move(out));
    }

    JsonValue object() {
        expect('{');
        JsonObject out;
        if (consume('}')) return JsonValue(std::move(out));
        while (true) {
            skip_ws();
            std::string key = string();
            expect(':');
            out.emplace(std::move(key), value());
            if (consume('}')) break;
            expect(',');
        }
        return JsonValue(std::move(out));
    }
};

void dump_to(std::string& out, const JsonValue& v);

}  // namespace

bool JsonValue::as_bool() const {
    if (const auto* b = std::get_if<bool>(&v_)) return *b;
    fail("not a bool");
}

std::int64_t JsonValue::as_int() const {
    if (const auto* n = std::get_if<std::int64_t>(&v_)) return *n;
    if (const auto* d = std::get_if<double>(&v_)) {
        if (*d == std::floor(*d)) return static_cast<std::int64_t>(*d);
    }
    fail("not an integer");
}

double JsonValue::as_double() const {
    if (const auto* d = std::get_if<double>(&v_)) return *d;
    if (const auto* n = std::get_if<std::int64_t>(&v_)) return static_cast<double>(*n);
    fail("not a number");
}

const std::string& JsonValue::as_string() const {
    if (const auto* s = std::get_if<std::string>(&v_)) return *s;
    fail("not a string");
}

const JsonArray& JsonValue::as_array() const {
    if (const auto* a = std::get_if<JsonArray>(&v_)) return *a;
    fail("not an array");
}

const JsonObject& JsonValue::as_object() const {
    if (const auto* o = std::get_if<JsonObject>(&v_)) return *o;
    fail("not an object");
}

const JsonValue& JsonValue::at(const std::string& key) const {
    const auto& obj = as_object();
    const auto it = obj.find(key);
    if (it == obj.end()) fail("missing field '" + key + "'");
    return it->second;
}

const JsonValue* JsonValue::find(const std::string& key) const {
    const auto& obj = as_object();
    const auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
}

namespace {

void dump_to(std::string& out, const JsonValue& v) {
    if (v.is_null()) {
        out += "null";
    } else if (v.is_object()) {
        out += '{';
        bool first = true;
        for (const auto& [k, val] : v.as_object()) {
            if (!first) out += ',';
            first = false;
            append_escaped(out, k);
            out += ':';
            dump_to(out, val);
        }
        out += '}';
    } else if (v.is_array()) {
        out += '[';
        bool first = true;
        for (const auto& e : v.as_array()) {
            if (!first) out += ',';
            first = false;
            dump_to(out, e);
        }
        out += ']';
    } else {
        // Scalar: try each in turn.
        try {
            const std::int64_t n = v.as_int();
            out += std::to_string(n);
            return;
        } catch (const std::runtime_error&) {}
        try {
            const double d = v.as_double();
            char buf[32];
            std::snprintf(buf, sizeof buf, "%.17g", d);
            out += buf;
            return;
        } catch (const std::runtime_error&) {}
        try {
            out += v.as_bool() ? "true" : "false";
            return;
        } catch (const std::runtime_error&) {}
        append_escaped(out, v.as_string());
    }
}

}  // namespace

std::string JsonValue::dump() const {
    std::string out;
    dump_to(out, *this);
    return out;
}

JsonValue JsonValue::parse(const std::string& text) {
    Parser p{text};
    JsonValue v = p.value();
    p.skip_ws();
    if (p.pos != text.size()) fail("trailing garbage at offset " + std::to_string(p.pos));
    return v;
}

}  // namespace epea::util
