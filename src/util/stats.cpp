#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace epea::util {

void RunningStats::add(double x) noexcept {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

RunningStats RunningStats::restore(std::size_t n, double mean, double m2, double sum,
                                   double min, double max) noexcept {
    RunningStats s;
    s.n_ = n;
    s.mean_ = mean;
    s.m2_ = m2;
    s.sum_ = sum;
    s.min_ = min;
    s.max_ = max;
    return s;
}

Proportion wilson_interval(std::uint64_t hits, std::uint64_t trials, double z) noexcept {
    Proportion p{.hits = hits, .trials = trials};
    if (trials == 0) return p;
    const double n = static_cast<double>(trials);
    const double phat = static_cast<double>(hits) / n;
    p.point = phat;
    const double z2 = z * z;
    const double denom = 1.0 + z2 / n;
    const double centre = phat + z2 / (2.0 * n);
    const double margin = z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n));
    p.lo = std::max(0.0, (centre - margin) / denom);
    p.hi = std::min(1.0, (centre + margin) / denom);
    return p;
}

double quantile(std::vector<double> values, double q) noexcept {
    if (values.empty()) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    std::sort(values.begin(), values.end());
    const double pos = q * static_cast<double>(values.size() - 1);
    const auto idx = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(idx);
    if (idx + 1 >= values.size()) return values.back();
    return values[idx] * (1.0 - frac) + values[idx + 1] * frac;
}

namespace {

std::vector<double> ranks(const std::vector<double>& v) {
    std::vector<std::size_t> order(v.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
    std::vector<double> r(v.size(), 0.0);
    std::size_t i = 0;
    while (i < order.size()) {
        std::size_t j = i;
        while (j + 1 < order.size() && v[order[j + 1]] == v[order[i]]) ++j;
        // Average rank for ties.
        const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
        for (std::size_t k = i; k <= j; ++k) r[order[k]] = avg;
        i = j + 1;
    }
    return r;
}

}  // namespace

double spearman(const std::vector<double>& a, const std::vector<double>& b) noexcept {
    if (a.size() != b.size() || a.size() < 2) return 0.0;
    const auto ra = ranks(a);
    const auto rb = ranks(b);
    RunningStats sa;
    RunningStats sb;
    for (double x : ra) sa.add(x);
    for (double x : rb) sb.add(x);
    double cov = 0.0;
    for (std::size_t i = 0; i < ra.size(); ++i) {
        cov += (ra[i] - sa.mean()) * (rb[i] - sb.mean());
    }
    cov /= static_cast<double>(ra.size() - 1);
    const double denom = sa.stddev() * sb.stddev();
    return denom > 0.0 ? cov / denom : 0.0;
}

}  // namespace epea::util
