#include "util/csv.hpp"

#include <cstdio>

namespace epea::util {

std::string CsvWriter::escape(std::string_view text) {
    const bool needs_quotes =
        text.find_first_of(",\"\n\r") != std::string_view::npos;
    if (!needs_quotes) return std::string{text};
    std::string out;
    out.reserve(text.size() + 2);
    out.push_back('"');
    for (char c : text) {
        if (c == '"') out.push_back('"');
        out.push_back(c);
    }
    out.push_back('"');
    return out;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
    for (const auto& c : cells) cell(c);
    end_row();
}

void CsvWriter::row(std::initializer_list<std::string_view> cells) {
    for (auto c : cells) cell(c);
    end_row();
}

CsvWriter& CsvWriter::cell(std::string_view text) {
    if (row_started_) *out_ << ',';
    *out_ << escape(text);
    row_started_ = true;
    return *this;
}

CsvWriter& CsvWriter::cell(double value, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, value);
    return cell(std::string_view{buf});
}

CsvWriter& CsvWriter::cell(std::int64_t value) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
    return cell(std::string_view{buf});
}

CsvWriter& CsvWriter::cell(std::uint64_t value) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(value));
    return cell(std::string_view{buf});
}

void CsvWriter::end_row() {
    *out_ << '\n';
    row_started_ = false;
}

}  // namespace epea::util
