// Small statistics toolkit used by the fault-injection result analysis:
// running moments, order statistics and binomial-proportion confidence
// intervals for coverage estimates (cf. Powell et al., "Estimators for
// Fault Tolerance Coverage Evaluation", IEEE ToC 1995 — reference [14] of
// the reproduced paper).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace epea::util {

/// Welford running mean/variance accumulator.
class RunningStats {
public:
    void add(double x) noexcept;

    [[nodiscard]] std::size_t count() const noexcept { return n_; }
    [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
    /// Sample variance (n-1 denominator); 0 for fewer than two samples.
    [[nodiscard]] double variance() const noexcept;
    [[nodiscard]] double stddev() const noexcept;
    [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
    [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
    [[nodiscard]] double sum() const noexcept { return sum_; }

    /// Merges another accumulator into this one (parallel-friendly).
    void merge(const RunningStats& other) noexcept;

    /// Second central moment sum (n * population variance). Together with
    /// count/mean/sum/min/max this is the full accumulator state, so a
    /// checkpointed accumulator can be restored losslessly.
    [[nodiscard]] double m2() const noexcept { return m2_; }

    /// Rebuilds an accumulator from persisted state (see m2()).
    [[nodiscard]] static RunningStats restore(std::size_t n, double mean, double m2,
                                              double sum, double min,
                                              double max) noexcept;

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// A binomial proportion with its confidence interval — the natural shape
/// of a fault-injection coverage estimate (detections / activated errors).
struct Proportion {
    std::uint64_t hits = 0;
    std::uint64_t trials = 0;
    double point = 0.0;  ///< hits / trials (0 when trials == 0)
    double lo = 0.0;     ///< lower confidence bound
    double hi = 0.0;     ///< upper confidence bound
};

/// Wilson score interval for a binomial proportion. `z` is the standard
/// normal quantile (1.96 for 95 %). Robust for proportions near 0 or 1,
/// which is exactly where coverage estimates live.
[[nodiscard]] Proportion wilson_interval(std::uint64_t hits, std::uint64_t trials,
                                         double z = 1.96) noexcept;

/// Exact quantile by sorting a copy; q in [0,1] with linear interpolation.
[[nodiscard]] double quantile(std::vector<double> values, double q) noexcept;

/// Spearman rank correlation between two equal-length vectors; used by the
/// test suite to compare measured signal orderings against the paper's.
[[nodiscard]] double spearman(const std::vector<double>& a,
                              const std::vector<double>& b) noexcept;

}  // namespace epea::util
