// Deterministic random number generation for reproducible experiments.
//
// All stochastic behaviour in the library (plant noise, injection
// schedules, synthetic system generation) flows through Rng so that every
// experiment binary prints identical output for a given seed.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace epea::util {

/// SplitMix64 — used to expand a single user seed into a full generator
/// state. Public because it is also handy for hashing small keys into
/// per-stream seeds.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// xoshiro256** generator. Small, fast, and of high statistical quality;
/// satisfies the UniformRandomBitGenerator concept so it can also be used
/// with <random> distributions when needed.
class Rng {
public:
    using result_type = std::uint64_t;

    /// Seeds the generator deterministically from a single 64-bit seed.
    explicit Rng(std::uint64_t seed = 0x5eedULL) noexcept { reseed(seed); }

    void reseed(std::uint64_t seed) noexcept {
        std::uint64_t sm = seed;
        for (auto& word : state_) word = splitmix64(sm);
    }

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept {
        return std::numeric_limits<result_type>::max();
    }

    result_type operator()() noexcept {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
    [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept;

    /// Uniform integer in [lo, hi] inclusive.
    [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

    /// Uniform double in [0, 1).
    [[nodiscard]] double uniform() noexcept {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /// Uniform double in [lo, hi).
    [[nodiscard]] double uniform(double lo, double hi) noexcept {
        return lo + (hi - lo) * uniform();
    }

    /// Standard normal via Marsaglia polar method.
    [[nodiscard]] double gaussian() noexcept;

    /// Bernoulli trial with probability p.
    [[nodiscard]] bool chance(double p) noexcept { return uniform() < p; }

    /// Derives an independent child generator; `stream` distinguishes
    /// children of the same parent (e.g. one stream per injection run).
    [[nodiscard]] Rng fork(std::uint64_t stream) noexcept;

    /// Fisher-Yates shuffle.
    template <typename T>
    void shuffle(std::vector<T>& items) noexcept {
        for (std::size_t i = items.size(); i > 1; --i) {
            using std::swap;
            swap(items[i - 1], items[below(i)]);
        }
    }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4]{};
    bool have_spare_ = false;
    double spare_ = 0.0;
};

}  // namespace epea::util
