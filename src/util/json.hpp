// Minimal JSON value, writer and parser for the repo's on-disk
// artifacts (campaign specs, shard checkpoints, event journals, metric
// snapshots, provenance manifests). Kept deliberately small: objects,
// arrays, strings, integers, doubles and booleans — enough for
// round-tripping our own files, not a general JSON library.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <type_traits>
#include <variant>
#include <vector>

namespace epea::util {

class JsonValue;

using JsonArray = std::vector<JsonValue>;
/// std::map keeps keys sorted, so serialization is deterministic.
using JsonObject = std::map<std::string, JsonValue>;

class JsonValue {
public:
    JsonValue() : v_(nullptr) {}
    JsonValue(std::nullptr_t) : v_(nullptr) {}
    JsonValue(bool b) : v_(b) {}
    template <typename T>
        requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
    JsonValue(T n) : v_(static_cast<std::int64_t>(n)) {}
    JsonValue(double d) : v_(d) {}
    JsonValue(const char* s) : v_(std::string(s)) {}
    JsonValue(std::string s) : v_(std::move(s)) {}
    JsonValue(JsonArray a) : v_(std::move(a)) {}
    JsonValue(JsonObject o) : v_(std::move(o)) {}

    [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
    [[nodiscard]] bool is_object() const { return std::holds_alternative<JsonObject>(v_); }
    [[nodiscard]] bool is_array() const { return std::holds_alternative<JsonArray>(v_); }

    /// Typed accessors; throw std::runtime_error on a type mismatch.
    [[nodiscard]] bool as_bool() const;
    [[nodiscard]] std::int64_t as_int() const;  ///< accepts integral doubles
    [[nodiscard]] double as_double() const;
    [[nodiscard]] const std::string& as_string() const;
    [[nodiscard]] const JsonArray& as_array() const;
    [[nodiscard]] const JsonObject& as_object() const;

    /// Object field lookup; throws std::runtime_error when missing.
    [[nodiscard]] const JsonValue& at(const std::string& key) const;
    /// Object field lookup with a fallback for optional fields.
    [[nodiscard]] const JsonValue* find(const std::string& key) const;

    /// Serializes compactly (single line, sorted keys).
    [[nodiscard]] std::string dump() const;

    /// Parses a JSON document; throws std::runtime_error on syntax errors
    /// or trailing garbage.
    [[nodiscard]] static JsonValue parse(const std::string& text);

private:
    std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, JsonArray,
                 JsonObject>
        v_;
};

}  // namespace epea::util
