// Leveled logging with a process-wide threshold. Experiments default to
// kWarn so that bench output stays clean; tests can raise verbosity.
#pragma once

#include <sstream>
#include <string_view>

namespace epea::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets/gets the process-wide log threshold (not thread-safe by design —
/// configured once at startup).
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

namespace detail {
void emit(LogLevel level, std::string_view component, std::string_view message);
}

/// Stream-style log statement:  LOG(kInfo, "fi") << "runs=" << n;
class LogLine {
public:
    LogLine(LogLevel level, std::string_view component) noexcept
        : level_(level), component_(component), active_(level >= log_level()) {}

    LogLine(const LogLine&) = delete;
    LogLine& operator=(const LogLine&) = delete;

    ~LogLine() {
        if (active_) detail::emit(level_, component_, stream_.str());
    }

    template <typename T>
    LogLine& operator<<(const T& value) {
        if (active_) stream_ << value;
        return *this;
    }

private:
    LogLevel level_;
    std::string_view component_;
    bool active_;
    std::ostringstream stream_;
};

}  // namespace epea::util

#define EPEA_LOG(level, component) \
    ::epea::util::LogLine(::epea::util::LogLevel::level, component)
