// Leveled logging with a process-wide threshold. Experiments default to
// kWarn so that bench output stays clean; tests can raise verbosity.
#pragma once

#include <functional>
#include <sstream>
#include <string_view>

namespace epea::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets/gets the process-wide log threshold. Thread-safe: the threshold
/// is a relaxed atomic, so any thread may flip it mid-run (a campaign
/// worker raising verbosity sees no torn reads, only an eventually
/// consistent level).
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// "DEBUG", "INFO", ... — stable names for sinks and exporters.
[[nodiscard]] std::string_view level_name(LogLevel level) noexcept;

/// Structured log sink. When installed, every emitted line is also
/// delivered as (level, component, message) — e.g. the campaign observer
/// mirrors logs into events.jsonl. Pass {} to uninstall. stderr output is
/// unaffected. Install/uninstall is thread-safe; the sink itself must be
/// callable from any logging thread.
using LogSink =
    std::function<void(LogLevel, std::string_view component, std::string_view message)>;
void set_log_sink(LogSink sink);

namespace detail {
void emit(LogLevel level, std::string_view component, std::string_view message);
}

/// Stream-style log statement:  LOG(kInfo, "fi") << "runs=" << n;
class LogLine {
public:
    LogLine(LogLevel level, std::string_view component) noexcept
        : level_(level), component_(component), active_(level >= log_level()) {}

    LogLine(const LogLine&) = delete;
    LogLine& operator=(const LogLine&) = delete;

    ~LogLine() {
        if (active_) detail::emit(level_, component_, stream_.str());
    }

    template <typename T>
    LogLine& operator<<(const T& value) {
        if (active_) stream_ << value;
        return *this;
    }

private:
    LogLevel level_;
    std::string_view component_;
    bool active_;
    std::ostringstream stream_;
};

}  // namespace epea::util

#define EPEA_LOG(level, component) \
    ::epea::util::LogLine(::epea::util::LogLevel::level, component)
