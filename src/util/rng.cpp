#include "util/rng.hpp"

#include <cmath>

namespace epea::util {

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    // Lemire's nearly-divisionless unbiased bounded generation.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
        const std::uint64_t threshold = -bound % bound;
        while (lo < threshold) {
            x = (*this)();
            m = static_cast<__uint128_t>(x) * bound;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
    if (hi <= lo) return lo;
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
}

double Rng::gaussian() noexcept {
    if (have_spare_) {
        have_spare_ = false;
        return spare_;
    }
    double u = 0.0;
    double v = 0.0;
    double s = 0.0;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    have_spare_ = true;
    return u * factor;
}

Rng Rng::fork(std::uint64_t stream) noexcept {
    std::uint64_t sm = state_[0] ^ (stream * 0x9e3779b97f4a7c15ULL + 0xd1b54a32d192ed03ULL);
    return Rng{splitmix64(sm)};
}

}  // namespace epea::util
