#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

namespace epea::util {

TextTable::TextTable(std::vector<std::string> header, std::vector<Align> aligns)
    : header_(std::move(header)), aligns_(std::move(aligns)) {
    aligns_.resize(header_.size(), Align::kLeft);
}

void TextTable::add_row(std::vector<std::string> cells) {
    cells.resize(header_.size());
    rows_.push_back(Row{std::move(cells), pending_rule_});
    pending_rule_ = false;
}

void TextTable::add_rule() { pending_rule_ = true; }

namespace {

void pad(std::ostream& out, const std::string& text, std::size_t width, Align align) {
    const std::size_t padding = width > text.size() ? width - text.size() : 0;
    if (align == Align::kRight) out << std::string(padding, ' ');
    out << text;
    if (align == Align::kLeft) out << std::string(padding, ' ');
}

}  // namespace

void TextTable::render(std::ostream& out) const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.cells.size(); ++c) {
            widths[c] = std::max(widths[c], row.cells[c].size());
        }
    }

    auto rule = [&] {
        out << '+';
        for (auto w : widths) out << std::string(w + 2, '-') << '+';
        out << '\n';
    };

    rule();
    out << '|';
    for (std::size_t c = 0; c < header_.size(); ++c) {
        out << ' ';
        pad(out, header_[c], widths[c], Align::kLeft);
        out << " |";
    }
    out << '\n';
    rule();
    for (const auto& row : rows_) {
        if (row.rule_before) rule();
        out << '|';
        for (std::size_t c = 0; c < row.cells.size(); ++c) {
            out << ' ';
            pad(out, row.cells[c], widths[c], aligns_[c]);
            out << " |";
        }
        out << '\n';
    }
    rule();
}

std::string TextTable::num(double value, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, value);
    return buf;
}

std::string TextTable::num(std::uint64_t value) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(value));
    return buf;
}

std::string TextTable::num(std::int64_t value) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
    return buf;
}

std::ostream& operator<<(std::ostream& out, const TextTable& table) {
    table.render(out);
    return out;
}

}  // namespace epea::util
