// Propagation-graph well-formedness (DESIGN.md §11, EPEA-E01x/W02x):
// structural checks on a built SystemModel, and a lenient line-parser for
// the serialized text format (epic::save_system_text) that reports every
// problem as a finding instead of throwing at the first one — so a model
// exchanged with external tooling can be vetted before construction.
#pragma once

#include <istream>
#include <string>

#include "analysis/finding.hpp"
#include "model/system_model.hpp"

namespace epea::analysis {

/// Structural lint of a constructed model: producer/name invariants
/// (EPEA-E011/E012 — normally enforced at build time, but re-checked so
/// models assembled by other front ends are covered), dead-end
/// intermediates (EPEA-W020) and modules from which no system output is
/// reachable (EPEA-W021). `artifact` labels the findings, e.g.
/// "model:arrestment".
[[nodiscard]] Report lint_model(const model::SystemModel& system,
                                const std::string& artifact);

/// Lint of the line-oriented text format without constructing a
/// SystemModel: malformed lines (EPEA-E013), dangling signal references
/// (EPEA-E010), bad names/widths (EPEA-E011) and producer invariants
/// (EPEA-E012). When the file parses into a valid model, the structural
/// checks of lint_model run as well.
[[nodiscard]] Report lint_model_text(std::istream& in, const std::string& artifact);

}  // namespace epea::analysis
