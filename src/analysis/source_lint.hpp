// Source-tree checks (DESIGN.md §11, EPEA-W06x): static rules over the
// repository's own sources rather than over model artifacts. Currently
// one rule, promoted from tools/lint_metric_names.py: every metric name
// literal passed to a counter/gauge/histogram registration call must
// match the obs naming contract obs::valid_metric_name enforces at
// runtime, so a bad name fails review instead of throwing on first use.
#pragma once

#include <string>

#include "analysis/finding.hpp"

namespace epea::analysis {

/// Scans `root`/{src,tools,bench,examples} for metric registration call
/// sites and reports EPEA-W060 for every literal name that violates
/// ^[a-z][a-z0-9_.]*$. tests/ is deliberately not scanned: it registers
/// invalid names to exercise the runtime rejection path.
/// `names_seen`, when non-null, receives the number of distinct literal
/// names encountered (for "N names, all clean" reporting).
[[nodiscard]] Report lint_metric_names(const std::string& root,
                                       std::size_t* names_seen = nullptr);

}  // namespace epea::analysis
