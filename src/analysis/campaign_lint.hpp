// Cross-artifact campaign-directory checks (DESIGN.md §11, EPEA-E05x/
// W05x): a campaign directory is a contract between spec.json, the
// shard-NNN.json checkpoints, events.jsonl and manifest.json. A resumed
// run merges whatever checkpoints it finds, so a shard that drifted from
// the spec's round-robin deal (or a manifest from a different
// configuration) silently corrupts the merged counts — exactly the class
// of error static verification catches before any injection runs.
#pragma once

#include <string>

#include "analysis/finding.hpp"

namespace epea::analysis {

/// Lints `dir` as a campaign directory. Reported artifact is
/// "campaign:<dir>". Never throws on bad artifacts — every problem
/// becomes a finding (EPEA-E050 when even spec.json is unusable).
[[nodiscard]] Report lint_campaign_dir(const std::string& dir);

/// Lints a subset_cache.json file (EPEA-W061): version, entry shape, key
/// format and count consistency. The delta planner runs this before it
/// reuses any cached ground truth; lint_campaign_dir applies it to a
/// subset_cache.json found next to the campaign artifacts. Reported
/// artifact is "subset-cache:<path>". A missing file is clean (the cache
/// is optional); a malformed one is not.
[[nodiscard]] Report lint_subset_cache_file(const std::string& path);

/// Lints a timeline.jsonl flight-recorder file (EPEA-W062): every line a
/// "sample" object, sequence numbers monotone within a run segment (a
/// reset to 0 starts a new segment — resumes append), timestamps
/// non-decreasing per segment, known phase names, and per-worker
/// continuity (the worker set must not change mid-segment, and runs
/// counters never decrease). Reported artifact is "timeline:<path>". A
/// missing file is clean (the sampler is optional); a torn final line is
/// tolerated like the journal's. lint_campaign_dir applies it to a
/// timeline.jsonl found in the campaign directory.
[[nodiscard]] Report lint_timeline_file(const std::string& path);

}  // namespace epea::analysis
