#include "analysis/model_lint.hpp"

#include <cstdint>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

namespace epea::analysis {
namespace {

/// Signals reachable forward from `start` (every module input feeds every
/// output of that module), including `start` itself.
std::vector<bool> forward_reachable(const model::SystemModel& system,
                                    model::SignalId start) {
    std::vector<bool> seen(system.signal_count(), false);
    std::vector<model::SignalId> stack{start};
    seen[start.index()] = true;
    while (!stack.empty()) {
        const model::SignalId s = stack.back();
        stack.pop_back();
        for (const model::PortRef& consumer : system.consumers_of(s)) {
            for (const model::SignalId out : system.module(consumer.module).outputs) {
                if (!seen[out.index()]) {
                    seen[out.index()] = true;
                    stack.push_back(out);
                }
            }
        }
    }
    return seen;
}

std::optional<model::SignalRole> parse_role(const std::string& s) {
    if (s == "input") return model::SignalRole::kSystemInput;
    if (s == "intermediate") return model::SignalRole::kIntermediate;
    if (s == "output") return model::SignalRole::kSystemOutput;
    return std::nullopt;
}

std::optional<model::SignalKind> parse_kind(const std::string& s) {
    if (s == "continuous") return model::SignalKind::kContinuous;
    if (s == "monotonic") return model::SignalKind::kMonotonic;
    if (s == "discrete") return model::SignalKind::kDiscrete;
    if (s == "boolean") return model::SignalKind::kBoolean;
    return std::nullopt;
}

}  // namespace

Report lint_model(const model::SystemModel& system, const std::string& artifact) {
    Report report;
    // The build-time invariants, re-checked: models can reach the lint
    // pass through front ends that bypass add_signal/add_module.
    for (const std::string& problem : system.validate()) {
        report.add("EPEA-E012", artifact, "", problem);
    }
    for (const model::SignalId s : system.all_signals()) {
        const model::SignalSpec& spec = system.signal(s);
        if (spec.role == model::SignalRole::kIntermediate &&
            system.consumers_of(s).empty()) {
            report.add("EPEA-W020", artifact, spec.name,
                       "intermediate signal has no module consumer; errors "
                       "entering it cannot propagate further (EA placement "
                       "there only pays off under internal error models)");
        }
    }
    for (const model::ModuleId m : system.all_modules()) {
        const model::ModuleSpec& spec = system.module(m);
        bool reaches_output = false;
        for (const model::SignalId out : spec.outputs) {
            const std::vector<bool> seen = forward_reachable(system, out);
            for (const model::SignalId s :
                 system.signals_with_role(model::SignalRole::kSystemOutput)) {
                if (seen[s.index()]) {
                    reaches_output = true;
                    break;
                }
            }
            if (reaches_output) break;
        }
        if (!reaches_output && !spec.outputs.empty()) {
            report.add("EPEA-W021", artifact, spec.name,
                       "no system output is reachable from any output of "
                       "this module; its computation never influences the "
                       "environment");
        }
    }
    return report;
}

Report lint_model_text(std::istream& in, const std::string& artifact) {
    Report report;

    struct SignalRow {
        std::string name;
        model::SignalSpec spec;
    };
    struct ModuleRow {
        std::string name;
        std::vector<std::string> inputs;
        std::vector<std::string> outputs;
    };
    std::vector<SignalRow> signals;
    std::vector<ModuleRow> modules;
    std::map<std::string, std::size_t> signal_index;
    std::map<std::string, std::size_t> module_index;
    bool parse_errors = false;

    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#') continue;
        const std::string at = "line " + std::to_string(lineno);
        std::istringstream stream(line);
        std::string keyword;
        stream >> keyword;
        if (keyword == "signal") {
            std::string name;
            std::string role;
            std::string kind;
            unsigned width = 0;
            if (!(stream >> name >> role >> kind >> width)) {
                report.add("EPEA-E013", artifact, at, "bad signal line: " + line);
                parse_errors = true;
                continue;
            }
            const auto r = parse_role(role);
            const auto k = parse_kind(kind);
            if (!r || !k) {
                report.add("EPEA-E013", artifact, at,
                           "unknown role/kind '" + (r ? kind : role) + "'");
                parse_errors = true;
                continue;
            }
            if (name.empty()) {
                report.add("EPEA-E011", artifact, at, "empty signal name");
                parse_errors = true;
                continue;
            }
            if (signal_index.contains(name)) {
                report.add("EPEA-E011", artifact, name, "duplicate signal name");
                parse_errors = true;
                continue;
            }
            if (width == 0 || width > 32) {
                report.add("EPEA-E011", artifact, name,
                           "signal width " + std::to_string(width) +
                               " outside [1,32]");
                parse_errors = true;
                continue;
            }
            signal_index.emplace(name, signals.size());
            signals.push_back(SignalRow{
                name, model::SignalSpec{name, *r, *k,
                                        static_cast<std::uint8_t>(width)}});
        } else if (keyword == "module") {
            std::string name;
            std::string token;
            if (!(stream >> name >> token) || token != "in") {
                report.add("EPEA-E013", artifact, at, "bad module line: " + line);
                parse_errors = true;
                continue;
            }
            if (module_index.contains(name)) {
                report.add("EPEA-E011", artifact, name, "duplicate module name");
                parse_errors = true;
                continue;
            }
            ModuleRow row;
            row.name = name;
            bool in_outputs = false;
            while (stream >> token) {
                if (!in_outputs && token == "out") {
                    in_outputs = true;
                    continue;
                }
                if (!signal_index.contains(token)) {
                    report.add("EPEA-E010", artifact, name,
                               "port references undeclared signal '" + token +
                                   "'");
                    parse_errors = true;
                    continue;
                }
                (in_outputs ? row.outputs : row.inputs).push_back(token);
            }
            module_index.emplace(name, modules.size());
            modules.push_back(std::move(row));
        } else {
            report.add("EPEA-E013", artifact, at, "unknown keyword '" + keyword + "'");
            parse_errors = true;
        }
    }

    // Producer invariants over the parsed rows (duplicate producers would
    // make SystemModel construction throw, so check here first).
    std::map<std::string, std::string> producer_of;  // signal -> module
    for (const ModuleRow& m : modules) {
        if (m.inputs.empty()) {
            report.add("EPEA-E012", artifact, m.name, "module has no inputs");
            parse_errors = true;
        }
        if (m.outputs.empty()) {
            report.add("EPEA-E012", artifact, m.name, "module has no outputs");
            parse_errors = true;
        }
        for (const std::string& out : m.outputs) {
            const auto [it, inserted] = producer_of.emplace(out, m.name);
            if (!inserted) {
                report.add("EPEA-E012", artifact, out,
                           "produced by both '" + it->second + "' and '" +
                               m.name + "'");
                parse_errors = true;
            }
        }
    }
    if (parse_errors) return report;  // cannot assemble a model to go deeper

    model::SystemModel system;
    for (SignalRow& row : signals) system.add_signal(std::move(row.spec));
    for (const ModuleRow& m : modules) {
        model::ModuleSpec spec;
        spec.name = m.name;
        for (const std::string& s : m.inputs) spec.inputs.push_back(system.signal_id(s));
        for (const std::string& s : m.outputs) spec.outputs.push_back(system.signal_id(s));
        system.add_module(std::move(spec));
    }
    report.merge(lint_model(system, artifact));
    return report;
}

}  // namespace epea::analysis
