#include "analysis/finding.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "util/json.hpp"

namespace epea::analysis {

const std::vector<RuleInfo>& rule_catalog() {
    static const std::vector<RuleInfo> kCatalog = {
        // -- propagation graph / system model ------------------------------
        {"EPEA-E010", Severity::kError, "dangling-signal-ref",
         "a module port references a signal the model does not declare"},
        {"EPEA-E011", Severity::kError, "bad-name",
         "empty or duplicate signal/module name, or signal width outside [1,32]"},
        {"EPEA-E012", Severity::kError, "producer-invariant",
         "producer/consumer structure violates the model invariants"},
        {"EPEA-E013", Severity::kError, "malformed-model-line",
         "a line of a serialized artifact (model text or matrix CSV) "
         "cannot be parsed"},
        {"EPEA-W020", Severity::kWarning, "dead-end-intermediate",
         "an intermediate signal no module consumes; errors there cannot "
         "propagate further through the software"},
        {"EPEA-W021", Severity::kWarning, "unreachable-output-module",
         "no system output is reachable from any of the module's outputs"},
        // -- permeability matrix -------------------------------------------
        {"EPEA-E030", Severity::kError, "perm-out-of-range",
         "a permeability value lies outside [0,1]"},
        {"EPEA-E031", Severity::kError, "count-mismatch",
         "estimation counts are inconsistent (affected > active, or value "
         "disagrees with affected/active)"},
        {"EPEA-W032", Severity::kWarning, "wide-ci",
         "the Wilson interval of an estimated pair is wider than the "
         "trustworthiness threshold; more injection runs are needed"},
        {"EPEA-E034", Severity::kError, "lossless-cycle",
         "a feedback cycle over two or more signals has permeability "
         "product ~1; truncated path prefixes carry non-negligible weight, "
         "breaking opt::visibility composition"},
        {"EPEA-W033", Severity::kWarning, "lossy-feedback",
         "a feedback cycle has permeability product >= 0.5; analytic "
         "visibility underestimates propagation through it"},
        {"EPEA-W035", Severity::kWarning, "zero-exposure-output",
         "a system output has zero error exposure; no modelled error ever "
         "reaches the actuator, which usually means missing matrix rows"},
        // -- EDM placement --------------------------------------------------
        {"EPEA-E040", Severity::kError, "ea-unknown-signal",
         "a placed EA references a signal the model does not declare"},
        {"EPEA-E041", Severity::kError, "ea-no-cost-entry",
         "a placed signal's kind has no Table-3 cost entry (no EA type "
         "exists for it, e.g. boolean signals)"},
        {"EPEA-W042", Severity::kWarning, "ea-on-system-input",
         "an EA guards a raw system input (sensor/HW register) — outside "
         "the paper's EA locations"},
        {"EPEA-W043", Severity::kWarning, "ea-zero-exposure",
         "an EA guards a signal with zero error exposure (all producing "
         "permeabilities are zero) — the assertion can never fire on a "
         "propagated error"},
        {"EPEA-E044", Severity::kError, "frontier-cost-mismatch",
         "a frontier artifact's cost axis disagrees with the Table-3 cost "
         "model of the candidate set"},
        {"EPEA-W045", Severity::kWarning, "frontier-missing-reference",
         "a frontier artifact lacks a labelled reference placement "
         "(EH-set/PA-set/EXT-set)"},
        {"EPEA-E046", Severity::kError, "frontier-point-count",
         "a frontier artifact's point count is not 2^n - 1 for the n-"
         "candidate subset lattice"},
        {"EPEA-W063", Severity::kWarning, "shadowed-ea",
         "the prover shows no modelled error can ever propagate into the "
         "EA's signal (its propagated witness set is empty) — the "
         "detector is provably redundant, the structural form of the "
         "paper's §7 IsValue/mscnt zero-exposure finding"},
        {"EPEA-W064", Severity::kWarning, "uncut-coverage-claim",
         "a placement labelled full-coverage is not a vertex cut of the "
         "signal graph: a concrete error path reaches a system output "
         "past every EA"},
        // -- campaign directories ------------------------------------------
        {"EPEA-E050", Severity::kError, "bad-spec",
         "spec.json is missing, unreadable or malformed"},
        {"EPEA-E051", Severity::kError, "shard-out-of-range",
         "a checkpoint's shard index is outside the spec's shard count"},
        {"EPEA-E052", Severity::kError, "shard-case-mismatch",
         "a checkpoint's case list differs from the spec's round-robin "
         "deal for that shard; merged counts would be wrong"},
        {"EPEA-E053", Severity::kError, "shard-kind-mismatch",
         "a checkpoint was produced by a different campaign kind than the "
         "spec declares"},
        {"EPEA-W054", Severity::kWarning, "spec-window-anomaly",
         "a spec field makes the campaign degenerate (no cases, zero "
         "times/ticks, or an adaptive threshold outside (0, 0.5])"},
        {"EPEA-E055", Severity::kError, "manifest-tampered",
         "manifest.json's stored config_hash does not match its own "
         "config object"},
        {"EPEA-E056", Severity::kError, "manifest-stale",
         "manifest.json was produced under a different configuration than "
         "the spec.json now in the directory"},
        {"EPEA-W057", Severity::kWarning, "journal-unparsable",
         "events.jsonl contains lines that are not valid JSON objects"},
        {"EPEA-W058", Severity::kWarning, "shard-zero-runs",
         "a completed checkpoint recorded zero injection runs"},
        {"EPEA-W059", Severity::kWarning, "shard-unreadable",
         "a shard checkpoint exists but cannot be parsed; resume treats it "
         "as absent and re-executes the shard"},
        // -- source tree ----------------------------------------------------
        {"EPEA-W060", Severity::kWarning, "bad-metric-name",
         "a metric registered in the source tree violates the obs naming "
         "contract ^[a-z][a-z0-9_.]*$"},
        // -- caches ---------------------------------------------------------
        {"EPEA-W061", Severity::kWarning, "bad-subset-cache",
         "subset_cache.json is malformed or holds inconsistent entries; "
         "the ground-truth optimizer and the delta planner would silently "
         "re-measure or mis-reuse coverage"},
        // -- timelines -------------------------------------------------------
        {"EPEA-W062", Severity::kWarning, "bad-timeline",
         "timeline.jsonl violates the flight-recorder contract (non-"
         "monotone timestamps or sequence numbers, unknown phase names, "
         "or per-worker sample discontinuity); obs report and the stall "
         "detector would mis-attribute progress"},
    };
    return kCatalog;
}

const RuleInfo* rule_info(std::string_view id) {
    for (const RuleInfo& rule : rule_catalog()) {
        if (id == rule.id) return &rule;
    }
    return nullptr;
}

void Report::add(std::string rule, std::string artifact, std::string object,
                 std::string message) {
    const RuleInfo* info = rule_info(rule);
    if (info == nullptr) {
        throw std::logic_error("analysis: unknown rule ID " + rule);
    }
    findings_.push_back(Finding{std::move(rule), info->severity,
                                std::move(artifact), std::move(object),
                                std::move(message)});
}

void Report::merge(Report other) {
    findings_.insert(findings_.end(),
                     std::make_move_iterator(other.findings_.begin()),
                     std::make_move_iterator(other.findings_.end()));
}

std::size_t Report::error_count() const noexcept {
    return static_cast<std::size_t>(
        std::count_if(findings_.begin(), findings_.end(), [](const Finding& f) {
            return f.severity == Severity::kError;
        }));
}

std::size_t Report::warning_count() const noexcept {
    return findings_.size() - error_count();
}

bool Report::has(std::string_view rule) const noexcept {
    return std::any_of(findings_.begin(), findings_.end(),
                       [rule](const Finding& f) { return f.rule == rule; });
}

int Report::exit_code(bool strict) const noexcept {
    if (error_count() > 0) return 2;
    if (strict && !findings_.empty()) return 2;
    return 0;
}

void write_text(std::ostream& os, const Report& report) {
    for (const Finding& f : report.findings()) {
        os << f.rule << ' ' << to_string(f.severity) << ' ' << f.artifact;
        if (!f.object.empty()) os << ' ' << f.object;
        os << ": " << f.message << '\n';
    }
    os << report.error_count() << " error(s), " << report.warning_count()
       << " warning(s)\n";
}

void write_json(std::ostream& os, const Report& report) {
    util::JsonArray findings;
    for (const Finding& f : report.findings()) {
        util::JsonObject o;
        o.emplace("rule", util::JsonValue(f.rule));
        o.emplace("severity", util::JsonValue(to_string(f.severity)));
        o.emplace("artifact", util::JsonValue(f.artifact));
        o.emplace("object", util::JsonValue(f.object));
        o.emplace("message", util::JsonValue(f.message));
        findings.emplace_back(std::move(o));
    }
    util::JsonObject root;
    root.emplace("findings", util::JsonValue(std::move(findings)));
    root.emplace("errors", util::JsonValue(report.error_count()));
    root.emplace("warnings", util::JsonValue(report.warning_count()));
    os << util::JsonValue(std::move(root)).dump() << '\n';
}

}  // namespace epea::analysis
