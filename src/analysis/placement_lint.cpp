#include "analysis/placement_lint.hpp"

#include <cmath>
#include <cstdio>
#include <set>

#include "epic/measures.hpp"
#include "opt/cost.hpp"
#include "prove/prover.hpp"

namespace epea::analysis {
namespace {

std::string fmt(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", v);
    return buf;
}

}  // namespace

Report lint_placement(const epic::PermeabilityMatrix& pm,
                      const std::vector<std::string>& ea_signals,
                      const std::string& artifact) {
    Report report;
    const model::SystemModel& system = pm.system();

    // Price every declared signal (from_signal_kinds skips kinds without
    // an EA type, so has() below is exactly "Table 3 covers this kind").
    const opt::CostModel costs =
        opt::CostModel::from_signal_kinds(system, system.all_signals());

    for (const std::string& name : ea_signals) {
        const auto id = system.find_signal(name);
        if (!id) {
            report.add("EPEA-E040", artifact, name,
                       "EA references a signal the model does not declare");
            continue;
        }
        const model::SignalSpec& spec = system.signal(*id);
        if (!costs.has(name)) {
            report.add("EPEA-E041", artifact, name,
                       std::string("no cost entry for ") +
                           model::to_string(spec.kind) +
                           " signals — no EA type can guard this location");
        }
        if (spec.role == model::SignalRole::kSystemInput) {
            report.add("EPEA-W042", artifact, name,
                       "EA guards a raw system input (sensor/HW register)");
            continue;  // inputs have no exposure value
        }
        const auto exposure = epic::signal_exposure(pm, *id);
        if (exposure && *exposure == 0.0) {
            report.add("EPEA-W043", artifact, name,
                       "EA guards a signal with zero error exposure; every "
                       "permeability into it is zero, so no propagated error "
                       "can ever trip the assertion");
        }
    }
    return report;
}

Report lint_placement_structure(const epic::PermeabilityMatrix& pm,
                                const std::vector<std::string>& ea_signals,
                                const std::string& artifact,
                                bool full_coverage_claim) {
    Report report;
    const model::SystemModel& system = pm.system();
    const prove::SignalGraph graph = prove::SignalGraph::from_matrix(pm);
    const prove::Prover prover(graph);

    // Resolvable, non-input EA signals; the rest belong to
    // lint_placement (E040 unknown, W042 input).
    std::vector<model::SignalId> ids;
    for (const std::string& name : ea_signals) {
        const auto id = system.find_signal(name);
        if (!id) continue;
        if (system.signal(*id).role == model::SignalRole::kSystemInput) continue;
        ids.push_back(*id);
    }
    if (ids.empty()) return report;

    const prove::PlacementCheck check =
        prover.check(ids, prove::SiteModel::kInput);
    for (const std::string& name : check.unwitnessed) {
        report.add("EPEA-W063", artifact, name,
                   "no system-input error can ever propagate into this EA's "
                   "signal (empty witness set); the detector is provably "
                   "redundant under the paper's injection model");
    }

    if (full_coverage_claim && !check.cut.is_cut) {
        std::string path;
        for (const std::string& hop : check.cut.witness_path) {
            if (!path.empty()) path += " -> ";
            path += hop;
        }
        report.add("EPEA-W064", artifact, check.cut.witness_site,
                   "placement is labelled full-coverage but is not a vertex "
                   "cut: an error at " +
                       check.cut.witness_site +
                       " reaches a system output past every EA (" + path + ")");
    }
    return report;
}

Report lint_frontier_dot(std::istream& in,
                         const std::vector<opt::Candidate>& candidates,
                         const std::vector<std::string>& reference_labels,
                         const std::string& artifact) {
    Report report;

    std::size_t points = 0;
    std::set<std::string> labels;
    double axis_max_mem = -1.0;

    std::string line;
    while (std::getline(in, line)) {
        // Node lines look like `  p42 [pos="x,y!", ...];`
        const auto p = line.find_first_not_of(' ');
        if (p != std::string::npos && line[p] == 'p' &&
            line.find("[pos=", p) != std::string::npos) {
            ++points;
        }
        const auto xl = line.find("xlabel=\"");
        if (xl != std::string::npos) {
            const auto end = line.find('"', xl + 8);
            if (end != std::string::npos) {
                labels.insert(line.substr(xl + 8, end - (xl + 8)));
            }
        }
        // Trailing `// axes: x = memory [bytes] (max N), y = coverage`
        const auto ax = line.find("(max ");
        if (line.find("// axes:") != std::string::npos && ax != std::string::npos) {
            axis_max_mem = std::strtod(line.c_str() + ax + 5, nullptr);
        }
    }

    const std::size_t n = candidates.size();
    const std::size_t expected_points =
        n >= 1 ? (std::size_t{1} << n) - 1 : 0;
    if (points != expected_points) {
        report.add("EPEA-E046", artifact, "",
                   std::to_string(points) + " points, expected 2^" +
                       std::to_string(n) + " - 1 = " +
                       std::to_string(expected_points) +
                       " for the candidate lattice");
    }

    double full_set_memory = 0.0;
    for (const opt::Candidate& c : candidates) full_set_memory += c.cost.memory;
    if (axis_max_mem < 0.0) {
        report.add("EPEA-E044", artifact, "",
                   "no `// axes: ... (max N)` annotation; the memory axis "
                   "cannot be checked against the Table-3 cost model");
    } else if (std::abs(axis_max_mem - full_set_memory) >
               1e-4 * std::max(1.0, full_set_memory)) {
        report.add("EPEA-E044", artifact, "",
                   "memory axis max " + fmt(axis_max_mem) +
                       " B disagrees with the Table-3 cost of the full "
                       "candidate set (" +
                       fmt(full_set_memory) + " B)");
    }

    for (const std::string& expected : reference_labels) {
        if (!labels.contains(expected)) {
            report.add("EPEA-W045", artifact, expected,
                       "reference placement label missing from the frontier "
                       "export");
        }
    }
    return report;
}

}  // namespace epea::analysis
