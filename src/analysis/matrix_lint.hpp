// Permeability-matrix sanity (DESIGN.md §11, EPEA-E03x/W03x): value
// ranges, estimation-count consistency, confidence-interval width, and
// the weighted-cycle checks that protect opt::visibility's path-prefix
// composition (paths never revisit a signal, so a near-lossless feedback
// cycle means the truncated prefixes carry weight the analytic measures
// silently drop).
#pragma once

#include <istream>
#include <string>

#include "analysis/finding.hpp"
#include "epic/matrix.hpp"

namespace epea::analysis {

struct MatrixLintOptions {
    /// EPEA-W032: warn when a counted pair's Wilson 95 % interval has a
    /// half-width above this (estimate too noisy to rank placements).
    double max_ci_half_width = 0.15;
    /// EPEA-W033: warn when a feedback cycle's permeability product
    /// reaches this.
    double feedback_warn = 0.5;
    /// EPEA-E034: error when it reaches this (effectively lossless).
    double feedback_error = 0.999;
};

[[nodiscard]] Report lint_matrix(const epic::PermeabilityMatrix& pm,
                                 const std::string& artifact,
                                 const MatrixLintOptions& options = {});

/// Lints a matrix CSV (save_matrix_csv format) leniently — unlike
/// epic::load_matrix_csv, which throws on the very defects a linter must
/// report. Rows are checked structurally (EPEA-E013 malformed line,
/// EPEA-E010 unknown module/signal, EPEA-E030 out-of-range value,
/// EPEA-E031 inconsistent counts); when every row parses cleanly the
/// loaded matrix additionally gets the deep lint_matrix checks.
[[nodiscard]] Report lint_matrix_csv(std::istream& in,
                                     const model::SystemModel& system,
                                     const std::string& artifact,
                                     const MatrixLintOptions& options = {});

}  // namespace epea::analysis
