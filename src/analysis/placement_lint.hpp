// Placement validity (DESIGN.md §11, EPEA-E04x/W04x): every placed EA
// must name a signal the model declares, sit on a signal kind the
// Table-3 cost model can price, and — to be worth its bytes — on a
// location an error can actually reach. Frontier artifacts (the
// committed frontier_placement_input.dot) are checked against the same
// cost model so a stale export cannot silently drift from the code.
#pragma once

#include <istream>
#include <string>
#include <vector>

#include "analysis/finding.hpp"
#include "epic/matrix.hpp"
#include "opt/search.hpp"

namespace epea::analysis {

/// Lints one EA placement (a list of signal names, e.g. the EH/PA/EXT
/// sets) against the model behind `pm` and its kind-derived costs:
/// EPEA-E040 unknown signal, EPEA-E041 no cost entry for the signal's
/// kind, EPEA-W042 EA on a raw system input, EPEA-W043 EA on a signal
/// with zero error exposure.
[[nodiscard]] Report lint_placement(const epic::PermeabilityMatrix& pm,
                                    const std::vector<std::string>& ea_signals,
                                    const std::string& artifact);

/// Semantic structure lint over the prover's signal graph (DESIGN.md
/// §16): EPEA-W063 when no system-input error can ever propagate into a
/// placed EA's signal (empty propagated witness set — the structural form
/// of §7's IsValue/mscnt finding), and, when the placement is claimed to
/// be full-coverage, EPEA-W064 with a concrete witness path if the EA
/// signals are not a vertex cut between the error sites and the outputs.
/// Unknown signal names are lint_placement's E040 business and skipped.
[[nodiscard]] Report lint_placement_structure(
    const epic::PermeabilityMatrix& pm, const std::vector<std::string>& ea_signals,
    const std::string& artifact, bool full_coverage_claim = false);

/// Lints a frontier .dot export (opt::write_frontier_dot) against the
/// candidate set that should have produced it: point count must be
/// 2^n - 1 (EPEA-E046), the memory axis maximum must equal the full
/// candidate set's Table-3 cost (EPEA-E044), and each expected reference
/// label should be present (EPEA-W045).
[[nodiscard]] Report lint_frontier_dot(std::istream& in,
                                       const std::vector<opt::Candidate>& candidates,
                                       const std::vector<std::string>& reference_labels,
                                       const std::string& artifact);

}  // namespace epea::analysis
