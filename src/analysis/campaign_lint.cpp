#include "analysis/campaign_lint.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "campaign/checkpoint.hpp"
#include "campaign/spec.hpp"
#include "obs/manifest.hpp"
#include "util/json.hpp"

namespace epea::analysis {
namespace {

std::optional<std::string> read_file(const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return std::nullopt;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

std::string hash_of(const util::JsonValue& config) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(obs::fnv1a64(config.dump())));
    return buf;
}

void lint_spec_windows(const campaign::CampaignSpec& spec, const std::string& artifact,
                       Report& report) {
    if (spec.case_ids.empty()) {
        report.add("EPEA-W054", artifact, "case_ids",
                   "no test cases selected; the campaign executes nothing");
    }
    if (spec.times_per_bit == 0) {
        report.add("EPEA-W054", artifact, "times_per_bit",
                   "zero injections per bit; every estimate will be 0/0");
    }
    if (spec.max_ticks == 0) {
        report.add("EPEA-W054", artifact, "max_ticks",
                   "zero-tick runs cannot activate any error");
    }
    if ((spec.kind == campaign::CampaignKind::kSevere ||
         spec.kind == campaign::CampaignKind::kRecovery) &&
        spec.severe_period == 0) {
        report.add("EPEA-W054", artifact, "severe_period",
                   "severe-model campaign with period 0");
    }
    if (spec.adaptive.enabled &&
        (spec.adaptive.half_width <= 0.0 || spec.adaptive.half_width > 0.5)) {
        report.add("EPEA-W054", artifact, "adaptive.half_width",
                   "adaptive threshold outside (0, 0.5] never (or instantly) "
                   "converges");
    }
    if (spec.shards == 0) {
        report.add("EPEA-W054", artifact, "shards",
                   "zero shards; nothing can be scheduled");
    }
}

// Key grammar of opt::SubsetCache::key():
//   <model>|c<cases>|t<times>|s<seed>[|p<period>]|<sig>[+<sig>...]
bool subset_cache_key_ok(const std::string& key) {
    std::size_t pos = 0;
    if (key.rfind("input|", 0) == 0) {
        pos = 6;
    } else if (key.rfind("severe|", 0) == 0) {
        pos = 7;
    } else {
        return false;
    }
    for (const char prefix : {'c', 't', 's'}) {
        if (pos >= key.size() || key[pos] != prefix) return false;
        std::size_t digits = 0;
        ++pos;
        while (pos < key.size() && std::isdigit(static_cast<unsigned char>(key[pos]))) {
            ++pos;
            ++digits;
        }
        if (digits == 0 || pos >= key.size() || key[pos] != '|') return false;
        ++pos;
    }
    if (pos < key.size() && key[pos] == 'p') {
        std::size_t probe = pos + 1;
        std::size_t digits = 0;
        while (probe < key.size() &&
               std::isdigit(static_cast<unsigned char>(key[probe]))) {
            ++probe;
            ++digits;
        }
        if (digits > 0 && probe < key.size() && key[probe] == '|') pos = probe + 1;
    }
    return pos < key.size();  // non-empty canonical subset part
}

void lint_subset_cache_entry(const std::string& key, const util::JsonValue& value,
                             const std::string& artifact, Report& report) {
    double coverage = 0.0;
    std::int64_t detected = 0;
    std::int64_t active = 0;
    std::int64_t runs = 0;
    try {
        coverage = value.at("coverage").as_double();
        detected = value.at("detected").as_int();
        active = value.at("active").as_int();
        runs = value.at("runs").as_int();
    } catch (const std::exception& e) {
        report.add("EPEA-W061", artifact, key, e.what());
        return;
    }
    if (!subset_cache_key_ok(key)) {
        report.add("EPEA-W061", artifact, key,
                   "key does not follow "
                   "<model>|c<cases>|t<times>|s<seed>[|p<period>]|<signals>");
    }
    if (detected < 0 || active < 0 || runs < 0) {
        report.add("EPEA-W061", artifact, key, "negative count");
        return;
    }
    if (detected > active) {
        report.add("EPEA-W061", artifact, key,
                   "detected " + std::to_string(detected) + " exceeds active " +
                       std::to_string(active));
        return;
    }
    const double derived =
        active ? static_cast<double>(detected) / static_cast<double>(active) : 0.0;
    if (coverage < 0.0 || coverage > 1.0 ||
        std::abs(coverage - derived) > 1e-9) {
        report.add("EPEA-W061", artifact, key,
                   "coverage " + std::to_string(coverage) +
                       " disagrees with detected/active (" +
                       std::to_string(derived) + ")");
    }
}

}  // namespace

Report lint_subset_cache_file(const std::string& path) {
    Report report;
    const std::string artifact = "subset-cache:" + path;
    if (!std::filesystem::exists(path)) return report;  // optional artifact
    const auto text = read_file(path);
    if (!text) {
        report.add("EPEA-W061", artifact, "subset_cache.json", "unreadable");
        return report;
    }
    util::JsonValue root;
    try {
        root = util::JsonValue::parse(*text);
        if (root.at("version").as_int() != 1) {
            report.add("EPEA-W061", artifact, "version",
                       "unsupported version " +
                           std::to_string(root.at("version").as_int()));
            return report;
        }
        for (const auto& [key, value] : root.at("entries").as_object()) {
            lint_subset_cache_entry(key, value, artifact, report);
        }
    } catch (const std::exception& e) {
        report.add("EPEA-W061", artifact, "subset_cache.json", e.what());
    }
    return report;
}

Report lint_timeline_file(const std::string& path) {
    Report report;
    const std::string artifact = "timeline:" + path;
    if (!std::filesystem::exists(path)) return report;  // optional artifact
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        report.add("EPEA-W062", artifact, "timeline.jsonl", "unreadable");
        return report;
    }
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);

    // Segment state: a seq reset to 0 starts a new run segment (resumed
    // campaigns append); invariants hold within one segment.
    bool in_segment = false;
    std::int64_t prev_seq = 0;
    double prev_t = 0.0;
    std::vector<std::int64_t> segment_workers;
    std::map<std::int64_t, std::int64_t> prev_runs;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        if (lines[i].empty()) continue;
        const std::string where = "line " + std::to_string(i + 1);
        util::JsonValue sample;
        try {
            sample = util::JsonValue::parse(lines[i]);
            if (!sample.is_object()) throw std::runtime_error("not an object");
        } catch (const std::exception& e) {
            // A torn final line from a killed sampler is expected.
            if (i + 1 < lines.size()) {
                report.add("EPEA-W062", artifact, where, e.what());
            }
            continue;
        }
        try {
            if (sample.at("type").as_string() != "sample") {
                report.add("EPEA-W062", artifact, where,
                           "unknown record type '" +
                               sample.at("type").as_string() + "'");
                continue;
            }
            const std::int64_t seq = sample.at("seq").as_int();
            const double t_s = sample.at("t_s").as_double();
            if (seq == 0 || !in_segment) {
                if (in_segment && seq != 0) {
                    report.add("EPEA-W062", artifact, where,
                               "seq jumps to " + std::to_string(seq) +
                                   " after " + std::to_string(prev_seq) +
                                   " (expected +1 or a reset to 0)");
                }
                in_segment = true;
                segment_workers.clear();
                prev_runs.clear();
            } else if (seq != prev_seq + 1) {
                report.add("EPEA-W062", artifact, where,
                           "seq " + std::to_string(seq) + " after " +
                               std::to_string(prev_seq) +
                               " (expected +1 or a reset to 0)");
                segment_workers.clear();
                prev_runs.clear();
            } else if (t_s < prev_t) {
                report.add("EPEA-W062", artifact, where,
                           "t_s " + std::to_string(t_s) +
                               " decreases from " + std::to_string(prev_t));
            }
            prev_seq = seq;
            prev_t = seq == 0 ? t_s : prev_t;
            if (t_s > prev_t) prev_t = t_s;

            std::vector<std::int64_t> workers_seen;
            for (const util::JsonValue& w : sample.at("workers").as_array()) {
                const std::int64_t id = w.at("worker").as_int();
                workers_seen.push_back(id);
                const std::string& phase = w.at("phase").as_string();
                if (phase != "idle" && phase != "execute" &&
                    phase != "checkpoint") {
                    report.add("EPEA-W062", artifact, where,
                               "worker " + std::to_string(id) +
                                   " has unknown phase '" + phase + "'");
                }
                const std::int64_t runs = w.at("runs").as_int();
                const auto it = prev_runs.find(id);
                if (it != prev_runs.end() && runs < it->second) {
                    report.add("EPEA-W062", artifact, where,
                               "worker " + std::to_string(id) + " runs " +
                                   std::to_string(runs) + " decreases from " +
                                   std::to_string(it->second));
                }
                prev_runs[id] = runs;
            }
            if (segment_workers.empty()) {
                segment_workers = workers_seen;
            } else if (segment_workers != workers_seen) {
                report.add("EPEA-W062", artifact, where,
                           "worker set changed mid-segment (" +
                               std::to_string(workers_seen.size()) + " vs " +
                               std::to_string(segment_workers.size()) +
                               " workers)");
                segment_workers = workers_seen;
            }
        } catch (const std::exception& e) {
            report.add("EPEA-W062", artifact, where, e.what());
        }
    }
    return report;
}

Report lint_campaign_dir(const std::string& dir) {
    Report report;
    const std::string artifact = "campaign:" + dir;

    // A bad spec.json is an error, but the other artifacts (subset cache,
    // timeline, events journal) have spec-independent contracts — lint
    // them regardless so one broken file does not mask the rest.
    const auto spec_text = read_file(std::filesystem::path(dir) / "spec.json");
    std::optional<campaign::CampaignSpec> spec;
    if (!spec_text) {
        report.add("EPEA-E050", artifact, "spec.json", "missing or unreadable");
    } else {
        try {
            spec = campaign::CampaignSpec::from_json(*spec_text);
        } catch (const std::exception& e) {
            report.add("EPEA-E050", artifact, "spec.json", e.what());
        }
    }
    if (spec) lint_spec_windows(*spec, artifact, report);

    // -- shard checkpoints vs the spec's round-robin deal ------------------
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
        if (!spec) break;
        const std::string name = entry.path().filename().string();
        if (name.rfind("shard-", 0) != 0 || entry.path().extension() != ".json") {
            continue;
        }
        const auto text = read_file(entry.path());
        if (!text) {
            report.add("EPEA-W059", artifact, name, "unreadable checkpoint");
            continue;
        }
        campaign::ShardResult shard;
        try {
            shard = campaign::ShardResult::from_json(*text);
        } catch (const std::exception& e) {
            report.add("EPEA-W059", artifact, name, e.what());
            continue;
        }
        if (campaign::shard_file_name(shard.shard) != name) {
            report.add("EPEA-E051", artifact, name,
                       "file name disagrees with the checkpoint's shard index " +
                           std::to_string(shard.shard));
            continue;
        }
        if (shard.shard >= spec->effective_shards()) {
            report.add("EPEA-E051", artifact, name,
                       "shard index " + std::to_string(shard.shard) +
                           " outside the spec's " +
                           std::to_string(spec->effective_shards()) +
                           " effective shard(s)");
            continue;
        }
        if (shard.kind != spec->kind) {
            report.add("EPEA-E053", artifact, name,
                       std::string("checkpoint kind '") +
                           campaign::to_string(shard.kind) +
                           "' differs from the spec's '" +
                           campaign::to_string(spec->kind) + "'");
        }
        if (shard.case_ids != spec->shard_cases(shard.shard)) {
            report.add("EPEA-E052", artifact, name,
                       "case list differs from the spec's round-robin deal; "
                       "merged counts would not be bit-identical to a "
                       "sequential run");
        }
        if (shard.runs == 0 && spec->times_per_bit > 0 && !shard.case_ids.empty()) {
            report.add("EPEA-W058", artifact, name,
                       "completed checkpoint recorded zero injection runs");
        }
    }

    // -- manifest.json: self-consistency and staleness vs spec.json --------
    if (const auto manifest_text =
            read_file(std::filesystem::path(dir) / "manifest.json")) {
        try {
            const util::JsonValue m = util::JsonValue::parse(*manifest_text);
            const util::JsonValue& config = m.at("config");
            const std::string stored = m.at("config_hash").as_string();
            if (stored != hash_of(config)) {
                report.add("EPEA-E055", artifact, "manifest.json",
                           "stored config_hash " + stored +
                               " does not match the manifest's own config (" +
                               hash_of(config) + ")");
            } else if (spec_text &&
                       m.at("command").as_string().rfind("campaign", 0) == 0) {
                const util::JsonValue spec_json = util::JsonValue::parse(*spec_text);
                if (hash_of(spec_json) != stored) {
                    report.add("EPEA-E056", artifact, "manifest.json",
                               "config hash " + stored +
                                   " was produced under a different "
                                   "configuration than spec.json (" +
                                   hash_of(spec_json) +
                                   "); the manifest is stale");
                }
            }
        } catch (const std::exception& e) {
            report.add("EPEA-E055", artifact, "manifest.json", e.what());
        }
    }

    // -- subset_cache.json: delta-planner / optimizer cache input ----------
    report.merge(lint_subset_cache_file(
        (std::filesystem::path(dir) / "subset_cache.json").string()));

    // -- timeline.jsonl: flight-recorder contract --------------------------
    report.merge(lint_timeline_file(
        (std::filesystem::path(dir) / "timeline.jsonl").string()));

    // -- events.jsonl: every line a JSON object ----------------------------
    if (std::filesystem::exists(std::filesystem::path(dir) / "events.jsonl")) {
        std::ifstream journal(std::filesystem::path(dir) / "events.jsonl");
        std::string line;
        std::size_t lineno = 0;
        std::size_t bad = 0;
        std::size_t first_bad = 0;
        while (std::getline(journal, line)) {
            ++lineno;
            if (line.empty()) continue;
            try {
                if (!util::JsonValue::parse(line).is_object()) throw std::runtime_error("not an object");
            } catch (const std::exception&) {
                if (bad++ == 0) first_bad = lineno;
            }
        }
        if (bad > 0) {
            report.add("EPEA-W057", artifact, "events.jsonl",
                       std::to_string(bad) + " unparsable line(s), first at line " +
                           std::to_string(first_bad));
        }
    }
    return report;
}

}  // namespace epea::analysis
