#include "analysis/campaign_lint.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "campaign/checkpoint.hpp"
#include "campaign/spec.hpp"
#include "obs/manifest.hpp"
#include "util/json.hpp"

namespace epea::analysis {
namespace {

std::optional<std::string> read_file(const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return std::nullopt;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

std::string hash_of(const util::JsonValue& config) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(obs::fnv1a64(config.dump())));
    return buf;
}

void lint_spec_windows(const campaign::CampaignSpec& spec, const std::string& artifact,
                       Report& report) {
    if (spec.case_ids.empty()) {
        report.add("EPEA-W054", artifact, "case_ids",
                   "no test cases selected; the campaign executes nothing");
    }
    if (spec.times_per_bit == 0) {
        report.add("EPEA-W054", artifact, "times_per_bit",
                   "zero injections per bit; every estimate will be 0/0");
    }
    if (spec.max_ticks == 0) {
        report.add("EPEA-W054", artifact, "max_ticks",
                   "zero-tick runs cannot activate any error");
    }
    if ((spec.kind == campaign::CampaignKind::kSevere ||
         spec.kind == campaign::CampaignKind::kRecovery) &&
        spec.severe_period == 0) {
        report.add("EPEA-W054", artifact, "severe_period",
                   "severe-model campaign with period 0");
    }
    if (spec.adaptive.enabled &&
        (spec.adaptive.half_width <= 0.0 || spec.adaptive.half_width > 0.5)) {
        report.add("EPEA-W054", artifact, "adaptive.half_width",
                   "adaptive threshold outside (0, 0.5] never (or instantly) "
                   "converges");
    }
    if (spec.shards == 0) {
        report.add("EPEA-W054", artifact, "shards",
                   "zero shards; nothing can be scheduled");
    }
}

}  // namespace

Report lint_campaign_dir(const std::string& dir) {
    Report report;
    const std::string artifact = "campaign:" + dir;

    const auto spec_text = read_file(std::filesystem::path(dir) / "spec.json");
    if (!spec_text) {
        report.add("EPEA-E050", artifact, "spec.json", "missing or unreadable");
        return report;
    }
    campaign::CampaignSpec spec;
    try {
        spec = campaign::CampaignSpec::from_json(*spec_text);
    } catch (const std::exception& e) {
        report.add("EPEA-E050", artifact, "spec.json", e.what());
        return report;
    }
    lint_spec_windows(spec, artifact, report);

    // -- shard checkpoints vs the spec's round-robin deal ------------------
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("shard-", 0) != 0 || entry.path().extension() != ".json") {
            continue;
        }
        const auto text = read_file(entry.path());
        if (!text) {
            report.add("EPEA-W059", artifact, name, "unreadable checkpoint");
            continue;
        }
        campaign::ShardResult shard;
        try {
            shard = campaign::ShardResult::from_json(*text);
        } catch (const std::exception& e) {
            report.add("EPEA-W059", artifact, name, e.what());
            continue;
        }
        if (campaign::shard_file_name(shard.shard) != name) {
            report.add("EPEA-E051", artifact, name,
                       "file name disagrees with the checkpoint's shard index " +
                           std::to_string(shard.shard));
            continue;
        }
        if (shard.shard >= spec.effective_shards()) {
            report.add("EPEA-E051", artifact, name,
                       "shard index " + std::to_string(shard.shard) +
                           " outside the spec's " +
                           std::to_string(spec.effective_shards()) +
                           " effective shard(s)");
            continue;
        }
        if (shard.kind != spec.kind) {
            report.add("EPEA-E053", artifact, name,
                       std::string("checkpoint kind '") +
                           campaign::to_string(shard.kind) +
                           "' differs from the spec's '" +
                           campaign::to_string(spec.kind) + "'");
        }
        if (shard.case_ids != spec.shard_cases(shard.shard)) {
            report.add("EPEA-E052", artifact, name,
                       "case list differs from the spec's round-robin deal; "
                       "merged counts would not be bit-identical to a "
                       "sequential run");
        }
        if (shard.runs == 0 && spec.times_per_bit > 0 && !shard.case_ids.empty()) {
            report.add("EPEA-W058", artifact, name,
                       "completed checkpoint recorded zero injection runs");
        }
    }

    // -- manifest.json: self-consistency and staleness vs spec.json --------
    if (const auto manifest_text =
            read_file(std::filesystem::path(dir) / "manifest.json")) {
        try {
            const util::JsonValue m = util::JsonValue::parse(*manifest_text);
            const util::JsonValue& config = m.at("config");
            const std::string stored = m.at("config_hash").as_string();
            if (stored != hash_of(config)) {
                report.add("EPEA-E055", artifact, "manifest.json",
                           "stored config_hash " + stored +
                               " does not match the manifest's own config (" +
                               hash_of(config) + ")");
            } else if (m.at("command").as_string().rfind("campaign", 0) == 0) {
                const util::JsonValue spec_json = util::JsonValue::parse(*spec_text);
                if (hash_of(spec_json) != stored) {
                    report.add("EPEA-E056", artifact, "manifest.json",
                               "config hash " + stored +
                                   " was produced under a different "
                                   "configuration than spec.json (" +
                                   hash_of(spec_json) +
                                   "); the manifest is stale");
                }
            }
        } catch (const std::exception& e) {
            report.add("EPEA-E055", artifact, "manifest.json", e.what());
        }
    }

    // -- events.jsonl: every line a JSON object ----------------------------
    if (std::filesystem::exists(std::filesystem::path(dir) / "events.jsonl")) {
        std::ifstream journal(std::filesystem::path(dir) / "events.jsonl");
        std::string line;
        std::size_t lineno = 0;
        std::size_t bad = 0;
        std::size_t first_bad = 0;
        while (std::getline(journal, line)) {
            ++lineno;
            if (line.empty()) continue;
            try {
                if (!util::JsonValue::parse(line).is_object()) throw std::runtime_error("not an object");
            } catch (const std::exception&) {
                if (bad++ == 0) first_bad = lineno;
            }
        }
        if (bad > 0) {
            report.add("EPEA-W057", artifact, "events.jsonl",
                       std::to_string(bad) + " unparsable line(s), first at line " +
                           std::to_string(first_bad));
        }
    }
    return report;
}

}  // namespace epea::analysis
