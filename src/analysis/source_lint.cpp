#include "analysis/source_lint.hpp"

#include <array>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include "obs/metrics.hpp"

namespace epea::analysis {
namespace {

bool word_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Finds `keyword ( "name"` call sites on one line (whitespace allowed
// around the parenthesis) and records each quoted name. The keyword must
// start at a word boundary and be immediately callable — a keyword inside
// a string literal that is *not* followed by `("` (like the ones in this
// file) never matches.
void collect_names(const std::string& line, const std::string& keyword,
                   const std::string& artifact, std::size_t lineno,
                   std::set<std::string>& names, Report& report) {
    std::size_t pos = 0;
    while ((pos = line.find(keyword, pos)) != std::string::npos) {
        const std::size_t start = pos;
        pos += keyword.size();
        if (start > 0 && word_char(line[start - 1])) continue;
        std::size_t i = pos;
        while (i < line.size() && line[i] == ' ') ++i;
        if (i >= line.size() || line[i] != '(') continue;
        ++i;
        while (i < line.size() && line[i] == ' ') ++i;
        if (i >= line.size() || line[i] != '"') continue;
        const std::size_t name_begin = i + 1;
        const std::size_t name_end = line.find('"', name_begin);
        if (name_end == std::string::npos) continue;
        const std::string name = line.substr(name_begin, name_end - name_begin);
        names.insert(name);
        if (!obs::valid_metric_name(name)) {
            report.add("EPEA-W060", artifact,
                       "line " + std::to_string(lineno),
                       "metric name '" + name +
                           "' violates ^[a-z][a-z0-9_.]*$; "
                           "obs::MetricRegistry will reject it at runtime");
        }
        pos = name_end;
    }
}

}  // namespace

Report lint_metric_names(const std::string& root, std::size_t* names_seen) {
    static const std::array<std::string, 3> kCalls = {"counter", "gauge",
                                                      "histogram"};
    Report report;
    std::set<std::string> names;
    for (const char* sub : {"src", "tools", "bench", "examples"}) {
        const std::filesystem::path base = std::filesystem::path(root) / sub;
        std::error_code ec;
        if (!std::filesystem::is_directory(base, ec)) continue;
        for (const auto& entry :
             std::filesystem::recursive_directory_iterator(base, ec)) {
            const std::string ext = entry.path().extension().string();
            if (ext != ".cpp" && ext != ".hpp") continue;
            const std::string artifact =
                std::filesystem::relative(entry.path(), root).string();
            std::ifstream in(entry.path());
            std::string line;
            std::size_t lineno = 0;
            while (std::getline(in, line)) {
                ++lineno;
                for (const std::string& call : kCalls) {
                    collect_names(line, call, artifact, lineno, names, report);
                }
            }
        }
    }
    if (names_seen != nullptr) *names_seen = names.size();
    return report;
}

}  // namespace epea::analysis
