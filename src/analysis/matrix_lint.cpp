#include "analysis/matrix_lint.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "epic/measures.hpp"
#include "util/stats.hpp"

namespace epea::analysis {
namespace {

std::string pair_name(const model::SystemModel& system, const epic::PairEntry& e) {
    // 1-based ports, matching the paper's P^M(i,k) notation.
    char buf[96];
    std::snprintf(buf, sizeof buf, "%s(%u,%u)",
                  system.module_name(e.module).c_str(), e.in_port + 1,
                  e.out_port + 1);
    return std::string(buf) + " " + system.signal_name(e.in_signal) + "->" +
           system.signal_name(e.out_signal);
}

std::string fmt(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", v);
    return buf;
}

struct Edge {
    std::size_t to = 0;
    double weight = 0.0;
};

/// DFS over the nonzero-permeability signal graph collecting the
/// maximum-product cycle through `start` (cycles of length >= 2; the
/// i -> i self-loop is excluded by construction since propagation paths
/// never revisit a signal). Only cycles whose smallest signal index is
/// `start` are reported, so each elementary cycle surfaces once.
void max_cycle_from(const std::vector<std::vector<Edge>>& graph, std::size_t start,
                    std::size_t at, double product, std::vector<bool>& on_path,
                    std::vector<std::size_t>& path, double& best,
                    std::vector<std::size_t>& best_path) {
    for (const Edge& e : graph[at]) {
        if (e.to == start && path.size() >= 2) {
            const double w = product * e.weight;
            if (w > best) {
                best = w;
                best_path = path;
            }
            continue;
        }
        if (e.to <= start || on_path[e.to]) continue;
        on_path[e.to] = true;
        path.push_back(e.to);
        max_cycle_from(graph, start, e.to, product * e.weight, on_path, path,
                       best, best_path);
        path.pop_back();
        on_path[e.to] = false;
    }
}

}  // namespace

Report lint_matrix(const epic::PermeabilityMatrix& pm, const std::string& artifact,
                   const MatrixLintOptions& options) {
    Report report;
    const model::SystemModel& system = pm.system();

    for (const epic::PairEntry& e : pm.entries()) {
        const std::string where = pair_name(system, e);
        if (!(e.value >= 0.0 && e.value <= 1.0) || std::isnan(e.value)) {
            report.add("EPEA-E030", artifact, where,
                       "permeability " + fmt(e.value) + " outside [0,1]");
            continue;
        }
        if (e.affected > e.active) {
            report.add("EPEA-E031", artifact, where,
                       "affected " + std::to_string(e.affected) + " > active " +
                           std::to_string(e.active));
            continue;
        }
        if (e.active > 0) {
            const double ratio = static_cast<double>(e.affected) /
                                 static_cast<double>(e.active);
            if (std::abs(ratio - e.value) > 1e-9) {
                report.add("EPEA-E031", artifact, where,
                           "value " + fmt(e.value) + " != affected/active " +
                               fmt(ratio));
                continue;
            }
            const util::Proportion ci = util::wilson_interval(e.affected, e.active);
            const double half_width = (ci.hi - ci.lo) / 2.0;
            if (half_width > options.max_ci_half_width) {
                report.add("EPEA-W032", artifact, where,
                           "Wilson 95% half-width " + fmt(half_width) +
                               " exceeds " + fmt(options.max_ci_half_width) +
                               " (" + std::to_string(e.active) +
                               " active runs are too few)");
            }
        }
    }

    // Weighted feedback cycles over the in-range entries.
    std::vector<std::vector<Edge>> graph(system.signal_count());
    for (const epic::PairEntry& e : pm.entries()) {
        if (e.value > 0.0 && e.value <= 1.0 && e.in_signal != e.out_signal) {
            graph[e.in_signal.index()].push_back(Edge{e.out_signal.index(), e.value});
        }
    }
    for (std::size_t start = 0; start < graph.size(); ++start) {
        double best = 0.0;
        std::vector<std::size_t> best_path;
        std::vector<bool> on_path(graph.size(), false);
        std::vector<std::size_t> path{start};
        on_path[start] = true;
        max_cycle_from(graph, start, start, 1.0, on_path, path, best, best_path);
        if (best < options.feedback_warn) continue;
        std::string cycle;
        for (const std::size_t s : best_path) {
            cycle += system.signal_name(model::SignalId{
                static_cast<std::uint32_t>(s)});
            cycle += "->";
        }
        cycle += system.signal_name(model::SignalId{static_cast<std::uint32_t>(start)});
        report.add(best >= options.feedback_error ? "EPEA-E034" : "EPEA-W033",
                   artifact, cycle,
                   "feedback cycle with permeability product " + fmt(best));
    }

    for (const model::SignalId s :
         system.signals_with_role(model::SignalRole::kSystemOutput)) {
        const auto exposure = epic::signal_exposure(pm, s);
        if (exposure && *exposure == 0.0) {
            report.add("EPEA-W035", artifact, system.signal_name(s),
                       "system output has zero error exposure; no modelled "
                       "error ever reaches this actuator");
        }
    }
    return report;
}

Report lint_matrix_csv(std::istream& in, const model::SystemModel& system,
                       const std::string& artifact,
                       const MatrixLintOptions& options) {
    Report report;
    epic::PermeabilityMatrix pm(system);
    std::string line;
    std::size_t lineno = 0;
    bool header_skipped = false;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty()) continue;
        if (!header_skipped) {
            header_skipped = true;
            if (line.rfind("module,", 0) == 0) continue;
        }
        const std::string where = "line " + std::to_string(lineno);

        std::vector<std::string> cells;
        std::size_t from = 0;
        for (std::size_t comma = 0; comma != std::string::npos; from = comma + 1) {
            comma = line.find(',', from);
            cells.push_back(line.substr(
                from, comma == std::string::npos ? comma : comma - from));
        }
        if (cells.size() != 6) {
            report.add("EPEA-E013", artifact, where,
                       "expected 6 columns "
                       "(module,in,out,value,affected,active), got " +
                           std::to_string(cells.size()));
            continue;
        }

        const auto mid = system.find_module(cells[0]);
        if (!mid) {
            report.add("EPEA-E010", artifact, where,
                       "unknown module '" + cells[0] + "'");
            continue;
        }
        const model::ModuleSpec& mod = system.module(*mid);
        const auto port_of = [&system](const std::vector<model::SignalId>& ports,
                                       const std::string& name) {
            for (const model::SignalId sid : ports) {
                if (system.signal_name(sid) == name) return true;
            }
            return false;
        };
        if (!port_of(mod.inputs, cells[1])) {
            report.add("EPEA-E010", artifact, where,
                       "'" + cells[1] + "' is not an input of " + cells[0]);
            continue;
        }
        if (!port_of(mod.outputs, cells[2])) {
            report.add("EPEA-E010", artifact, where,
                       "'" + cells[2] + "' is not an output of " + cells[0]);
            continue;
        }

        double value = 0.0;
        std::uint64_t affected = 0;
        std::uint64_t active = 0;
        try {
            value = std::stod(cells[3]);
            affected = std::stoull(cells[4]);
            active = std::stoull(cells[5]);
        } catch (const std::exception&) {
            report.add("EPEA-E013", artifact, where, "bad numeric field");
            continue;
        }
        if (!(value >= 0.0 && value <= 1.0)) {
            report.add("EPEA-E030", artifact, where,
                       "permeability " + fmt(value) + " outside [0,1] for " +
                           cells[0] + " " + cells[1] + "->" + cells[2]);
            continue;
        }
        if (affected > active) {
            report.add("EPEA-E031", artifact, where,
                       "affected " + std::to_string(affected) + " > active " +
                           std::to_string(active));
            continue;
        }
        if (active > 0) {
            pm.set_counts(cells[0], cells[1], cells[2], affected, active);
            const double ratio =
                static_cast<double>(affected) / static_cast<double>(active);
            if (std::abs(ratio - value) > 1e-9) {
                report.add("EPEA-E031", artifact, where,
                           "value " + fmt(value) + " != affected/active " +
                               fmt(ratio));
            }
        } else {
            pm.set(cells[0], cells[1], cells[2], value);
        }
    }

    // Only run the deep checks over a structurally clean matrix; missing
    // rows would otherwise cascade into misleading cycle/exposure noise.
    if (report.error_count() == 0) {
        report.merge(lint_matrix(pm, artifact, options));
    }
    return report;
}

}  // namespace epea::analysis
