// Static-verification findings (DESIGN.md §11). Every rule the lint
// pass can report carries a stable ID — EPEA-Exxx for errors (artifact
// is unusable or would silently corrupt downstream analysis) and
// EPEA-Wxxx for warnings (suspicious but legal) — so CI gates, golden
// tests and humans can match on the ID rather than on message text.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace epea::analysis {

enum class Severity : std::uint8_t { kWarning, kError };

[[nodiscard]] constexpr const char* to_string(Severity s) noexcept {
    return s == Severity::kError ? "error" : "warning";
}

/// One rule of the catalog. The catalog is the single source of truth
/// for IDs and severities; Report::add looks the severity up by ID so a
/// finding can never carry a severity that disagrees with its rule.
struct RuleInfo {
    const char* id;        ///< "EPEA-E010"
    Severity severity;
    const char* title;     ///< short kebab-case name
    const char* rationale; ///< one-line why-this-matters
};

/// All known rules, in catalog order (mirrored in DESIGN.md §11).
[[nodiscard]] const std::vector<RuleInfo>& rule_catalog();

/// Catalog entry for `id`, or nullptr for unknown IDs.
[[nodiscard]] const RuleInfo* rule_info(std::string_view id);

/// One violation: which rule, on which artifact, at which object.
struct Finding {
    std::string rule;      ///< catalog ID, e.g. "EPEA-W043"
    Severity severity = Severity::kWarning;
    std::string artifact;  ///< e.g. "model:arrestment", "campaign:/dir"
    std::string object;    ///< offending signal/pair/file within the artifact
    std::string message;   ///< human-readable description
};

/// Accumulates findings across lint prongs; the exit code and both
/// reporters are derived from it.
class Report {
public:
    /// Appends a finding; severity comes from the catalog. Throws
    /// std::logic_error on an ID the catalog does not list — rules
    /// cannot be invented ad hoc.
    void add(std::string rule, std::string artifact, std::string object,
             std::string message);

    void merge(Report other);

    [[nodiscard]] const std::vector<Finding>& findings() const noexcept {
        return findings_;
    }
    [[nodiscard]] std::size_t error_count() const noexcept;
    [[nodiscard]] std::size_t warning_count() const noexcept;
    [[nodiscard]] bool clean() const noexcept { return findings_.empty(); }
    [[nodiscard]] bool has(std::string_view rule) const noexcept;

    /// Contract of the lint CLI: 2 when any error-severity finding is
    /// present (with `strict`, any finding at all), 0 otherwise.
    [[nodiscard]] int exit_code(bool strict = false) const noexcept;

private:
    std::vector<Finding> findings_;
};

/// One line per finding plus a summary line, e.g.
///   EPEA-E030 error matrix:paper CALC(3,1): permeability 1.500 outside [0,1]
void write_text(std::ostream& os, const Report& report);

/// {"findings":[{rule,severity,artifact,object,message}...],
///  "errors":N,"warnings":M} — stable field order (sorted keys).
void write_json(std::ostream& os, const Report& report);

}  // namespace epea::analysis
