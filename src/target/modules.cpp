#include "target/modules.hpp"

#include <algorithm>
#include <string>

namespace epea::target {

namespace {

[[nodiscard]] constexpr std::int32_t clampi(std::int32_t v, std::int32_t lo,
                                            std::int32_t hi) noexcept {
    return v < lo ? lo : (v > hi ? hi : v);
}

}  // namespace

// ------------------------------------------------------------------ CLOCK

void ClockModule::init(runtime::InitContext& ctx) {
    ctx.ram("CLOCK.mscnt", &mscnt_, 16);
    for (std::size_t k = 0; k < slot_map_.size(); ++k) {
        ctx.ram("CLOCK.slot_map[" + std::to_string(k) + "]", &slot_map_[k], 8);
    }
}

void ClockModule::reset() {
    mscnt_ = 0;
    for (std::size_t k = 0; k < slot_map_.size(); ++k) {
        slot_map_[k] = static_cast<std::uint32_t>(k);
    }
}

void ClockModule::step(runtime::ModuleContext& ctx) {
    mscnt_ = (mscnt_ + 1) & 0xffffU;
    ctx.out(0, slot_map_[ctx.in(0) % kSlots] & 0xffU);
    ctx.out(1, mscnt_);
}

// ----------------------------------------------------------------- DIST_S

void DistSModule::init(runtime::InitContext& ctx) {
    ctx.ram("DIST_S.prev", &prev_, 8);
    ctx.ram("DIST_S.pulscnt", &pulscnt_, 16);
    for (std::size_t k = 0; k < bins_.size(); ++k) {
        ctx.ram("DIST_S.bin[" + std::to_string(k) + "]", &bins_[k], 8);
    }
    ctx.ram("DIST_S.acc", &acc_, 8);
    ctx.ram("DIST_S.phase", &phase_, 8);
    ctx.ram("DIST_S.bin_idx", &bin_idx_, 8);
    ctx.ram("DIST_S.rate", &rate_, 16);
    ctx.ram("DIST_S.slow_deb", &slow_deb_, 8);
    ctx.ram("DIST_S.stop_deb", &stop_deb_, 8);
    ctx.ram("DIST_S.stop_latch", &stop_latch_, 8);
    ctx.stack("DIST_S.delta", &delta_scratch_, 8);
}

void DistSModule::reset() {
    prev_ = 0;
    pulscnt_ = 0;
    bins_.fill(0);
    acc_ = 0;
    phase_ = 0;
    bin_idx_ = 0;
    rate_ = 0;
    slow_deb_ = 0;
    stop_deb_ = 0;
    stop_latch_ = 0;
    first_ = true;
}

void DistSModule::step(runtime::ModuleContext& ctx) {
    // Wrap-around decode of the 8-bit pulse counter; the first invocation
    // only captures the baseline.
    const std::uint32_t cnt = ctx.in(0);
    std::uint32_t delta = (cnt - prev_) & 0xffU;
    if (first_) {
        delta = 0;
        first_ = false;
    }
    prev_ = cnt & 0xffU;
    if (delta > kMaxPlausibleDelta) delta = kMaxPlausibleDelta;
    delta_scratch_ = delta;

    pulscnt_ = (pulscnt_ + delta_scratch_) & 0xffffU;

    // Windowed rate: pulses over the last kBins x kBinMs = 128 ms.
    acc_ = (acc_ + delta_scratch_) & 0xffU;
    phase_ = (phase_ + 1) & 0xffU;
    if (phase_ >= kBinMs) {
        phase_ = 0;
        const std::uint32_t bi = bin_idx_ % kBins;
        rate_ = (rate_ + acc_ - bins_[bi]) & 0xffffU;
        bins_[bi] = acc_;
        acc_ = 0;
        bin_idx_ = (bi + 1) % kBins;
    }
    slow_deb_ = rate_ < kSlowRateThreshold
                    ? std::min<std::uint32_t>(slow_deb_ + 1, 255)
                    : 0;

    // Stopped: the last pulse capture (TIC1) is older than the configured
    // age on the free-running timer (TCNT). Debounced, then latched.
    const std::uint32_t age = (ctx.in(2) - ctx.in(1)) & 0xffffU;
    stop_deb_ =
        age > cfg_.stop_age_counts ? std::min<std::uint32_t>(stop_deb_ + 1, 255) : 0;
    if (stop_deb_ >= kStopDebounce) stop_latch_ = 1;

    ctx.out(0, pulscnt_);
    ctx.out_bool(1, slow_deb_ >= kSlowDebounce);
    ctx.out_bool(2, stop_latch_ != 0);
}

// ------------------------------------------------------------------- CALC

namespace {

/// Pressure program in percent of the plateau. Decreasing: the hook-load
/// limit shrinks as the aircraft slows, so the program brakes hardest
/// early (the distance-based soft-start cap paces the pull-up) and fades
/// as the permissible force falls.
constexpr std::array<std::uint32_t, CalcModule::kProgSteps> kProgramPct = {
    108, 106, 104, 102, 100, 98, 96, 94, 92, 90, 88, 86, 84, 82, 80, 78};

}  // namespace

void CalcModule::set_config(const SoftwareConfig& cfg) {
    cfg_ = cfg;
    rebuild_program();
}

void CalcModule::rebuild_program() {
    for (std::size_t k = 0; k < prog_.size(); ++k) {
        prog_[k] = cfg_.plateau_pressure * kProgramPct[k] / 100;
    }
}

void CalcModule::init(runtime::InitContext& ctx) {
    for (std::size_t k = 0; k < prog_.size(); ++k) {
        ctx.ram("CALC.prog[" + std::to_string(k) + "]", &prog_[k], 16);
    }
    ctx.stack("CALC.base", &base_scratch_, 16);
    ctx.stack("CALC.cap", &cap_scratch_, 16);
}

void CalcModule::reset() { rebuild_program(); }

void CalcModule::step(runtime::ModuleContext& ctx) {
    const std::uint32_t i_in = ctx.in(0) & 0xffffU;
    const std::uint32_t mscnt = ctx.in(1) & 0xffffU;
    const std::uint32_t pulscnt = ctx.in(2) & 0xffffU;
    const bool slow = ctx.in_bool(3);
    const bool stopped = ctx.in_bool(4);

    // Distance index: one ratchet step per tick towards pulscnt/32,
    // frozen once the aircraft is stopped.
    const std::uint32_t dist_target = pulscnt >> 5;
    std::uint32_t i_next = i_in;
    if (!stopped && dist_target > i_in) i_next = (i_in + 1) & 0xffffU;
    ctx.out(0, i_next);

    // Time-programmed base pressure, tapered towards slow pressure as the
    // predicted stop time approaches.
    std::uint32_t base = prog_[std::min<std::uint32_t>(mscnt >> 9, kProgSteps - 1) %
                               kProgSteps];
    if (mscnt >= cfg_.taper_end_ms) {
        const std::uint32_t rem = mscnt - cfg_.taper_end_ms;
        const std::uint32_t floor_p = cfg_.slow_pressure + kTaperFloorMargin;
        if (base > floor_p) {
            base = rem >= kTaperMs
                       ? floor_p
                       : floor_p + (base - floor_p) * (kTaperMs - rem) / kTaperMs;
        }
    }
    base_scratch_ = base;

    // Soft start: cap by travelled distance (the view of i in the frame,
    // not the freshly ratcheted value — the cap is a function of this
    // invocation's inputs only).
    cap_scratch_ = cfg_.plateau_pressure *
                   (16 + std::min<std::uint32_t>(i_in, 32)) / 32;

    std::uint32_t set = std::min(base_scratch_, cap_scratch_);
    if (slow) set = cfg_.slow_pressure;
    if (mscnt >= cfg_.emergency_ms) set = 0;
    ctx.out(1, set & 0xffffU);
}

// ----------------------------------------------------------------- PRES_S

void PresSModule::init(runtime::InitContext& ctx) {
    for (std::size_t k = 0; k < buf_.size(); ++k) {
        ctx.ram("PRES_S.buf[" + std::to_string(k) + "]", &buf_[k], 8);
    }
    ctx.ram("PRES_S.idx", &idx_, 8);
    ctx.ram("PRES_S.filt", &filt_, 16);
    ctx.stack("PRES_S.med", &med_scratch_, 8);
}

void PresSModule::reset() {
    buf_.fill(0);
    idx_ = 0;
    filt_ = 0;
}

void PresSModule::step(runtime::ModuleContext& ctx) {
    buf_[idx_ % kTaps] = ctx.in(0) & 0xffU;
    idx_ = (idx_ + 1) % kTaps;
    std::array<std::uint32_t, kTaps> sorted = buf_;
    std::sort(sorted.begin(), sorted.end());
    med_scratch_ = sorted[kTaps / 2];

    const auto target = static_cast<std::int32_t>(med_scratch_ * 4);
    const auto prev = static_cast<std::int32_t>(filt_);
    const std::int32_t delta = clampi(target - prev, -kMaxSlewPerMs, kMaxSlewPerMs);
    filt_ = static_cast<std::uint32_t>(prev + delta) & 0xffffU;
    ctx.out(0, filt_);
}

// ------------------------------------------------------------------ V_REG

void VRegModule::init(runtime::InitContext& ctx) {
    ctx.ram("V_REG.integ", &integ_, 16);
    ctx.ram("V_REG.prev_out", &prev_out_, 16);
    ctx.stack("V_REG.err", &err_scratch_, 16);
}

void VRegModule::reset() {
    integ_ = 0;
    prev_out_ = 0;
}

void VRegModule::step(runtime::ModuleContext& ctx) {
    const auto set = static_cast<std::int32_t>(ctx.in(0) & 0xffffU);
    const auto is = static_cast<std::int32_t>(ctx.in(1) & 0xffffU);

    std::int32_t err = set - is;
    if (err >= -kDeadband && err <= kDeadband) err = 0;
    err_scratch_ = static_cast<std::uint32_t>(err) & 0xffffU;
    const std::int32_t err_db = util::sign_extend(err_scratch_, 16);

    // Integrate outside the deadband, but not against a saturated output
    // (wind-up protection).
    const bool saturated_low = prev_out_ == 0 && err_db < 0;
    const bool saturated_high = prev_out_ == 0xffffU && err_db > 0;
    std::int32_t integ = util::sign_extend(integ_, 16);
    if (!saturated_low && !saturated_high) {
        integ = clampi(integ + err_db / 4, -kIntegLimit, kIntegLimit);
    }
    integ_ = static_cast<std::uint32_t>(integ) & 0xffffU;

    const std::int32_t ff = (set >> 2) * 256;
    const std::int32_t u = ff + err_db * 16 + integ * 4;
    prev_out_ = static_cast<std::uint32_t>(clampi(u, 0, 65535));
    ctx.out(0, prev_out_);
}

// ----------------------------------------------------------------- PRES_A

void PresAModule::init(runtime::InitContext& ctx) {
    ctx.ram("PRES_A.cmd", &cmd_, 16);
    ctx.stack("PRES_A.tgt", &tgt_scratch_, 16);
}

void PresAModule::reset() { cmd_ = 0; }

void PresAModule::step(runtime::ModuleContext& ctx) {
    tgt_scratch_ = ctx.in(0) & 0xffffU;
    const std::int32_t diff = static_cast<std::int32_t>(tgt_scratch_) -
                              static_cast<std::int32_t>(cmd_);
    cmd_ = static_cast<std::uint32_t>(
               static_cast<std::int32_t>(cmd_) +
               clampi(diff, -kMaxSlewPerMs, kMaxSlewPerMs)) &
           0xffffU;
    ctx.out(0, cmd_ & kPwmMask);
}

}  // namespace epea::target
