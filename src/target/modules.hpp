// The six software modules of the arrestment controller (paper §4, Fig 2).
// Each is a black-box ModuleBehaviour computing outputs from its input
// frame; persistent state lives in registered RAM words, per-invocation
// temporaries in registered stack words (both injectable).
#pragma once

#include <array>
#include <cstdint>

#include "runtime/module_behaviour.hpp"
#include "target/arrestment_system.hpp"

namespace epea::target {

/// CLOCK: millisecond counter and slot-schedule pointer. `mscnt` counts
/// ticks (16 bit); `ms_slot_nbr` maps the distance index i into one of
/// the ten schedule slots via a ROM-initialised map (identity).
class ClockModule final : public runtime::ModuleBehaviour {
public:
    static constexpr std::uint32_t kSlots = 10;

    void init(runtime::InitContext& ctx) override;
    void reset() override;
    void step(runtime::ModuleContext& ctx) override;

private:
    std::uint32_t mscnt_ = 0;
    std::array<std::uint32_t, kSlots> slot_map_{};
};

/// DIST_S: distance/speed sensing from the cable-drum pulse counter
/// (PACNT) and the capture timer pair (TIC1/TCNT). Outputs the decoded
/// pulse count, a debounced slow-speed flag (from a 128 ms windowed
/// rate) and a latched stopped flag (from the age of the last pulse).
class DistSModule final : public runtime::ModuleBehaviour {
public:
    static constexpr std::uint32_t kMaxPlausibleDelta = 8;  ///< pulses/ms
    static constexpr std::uint32_t kBins = 16;              ///< 8 ms bins
    static constexpr std::uint32_t kBinMs = 8;              ///< window 128 ms
    static constexpr std::uint32_t kSlowRateThreshold = 4;  ///< pulses/128 ms
    static constexpr std::uint32_t kSlowDebounce = 50;      ///< ms
    static constexpr std::uint32_t kStopDebounce = 16;      ///< ms

    explicit DistSModule(const SoftwareConfig& cfg) : cfg_(cfg) {}

    void set_config(const SoftwareConfig& cfg) { cfg_ = cfg; }

    void init(runtime::InitContext& ctx) override;
    void reset() override;
    void step(runtime::ModuleContext& ctx) override;

    // `first_` is the only state word not registered with the memory map
    // (a one-shot latch, deliberately not injectable); snapshots must
    // carry it explicitly.
    void save_state(runtime::StateWriter& w) const override { w.boolean(first_); }
    void restore_state(runtime::StateReader& r) override { first_ = r.boolean(); }

private:
    SoftwareConfig cfg_;
    std::uint32_t prev_ = 0;
    std::uint32_t pulscnt_ = 0;
    std::array<std::uint32_t, kBins> bins_{};
    std::uint32_t acc_ = 0;
    std::uint32_t phase_ = 0;
    std::uint32_t bin_idx_ = 0;
    std::uint32_t rate_ = 0;
    std::uint32_t slow_deb_ = 0;
    std::uint32_t stop_deb_ = 0;
    std::uint32_t stop_latch_ = 0;
    bool first_ = true;
    std::uint32_t delta_scratch_ = 0;
};

/// CALC: the pressure program. Ratchets the distance index i towards
/// pulscnt/32 and computes SetValue from the time-indexed pressure table,
/// capped by a distance-based soft start, tapered near the predicted
/// stop, overridden at slow speed and zeroed at the emergency deadline.
class CalcModule final : public runtime::ModuleBehaviour {
public:
    static constexpr std::uint32_t kProgSteps = 16;
    static constexpr std::uint32_t kProgStepMs = 512;  ///< mscnt >> 9
    static constexpr std::uint32_t kTaperMs = 512;
    static constexpr std::uint32_t kTaperFloorMargin = 4;

    explicit CalcModule(const SoftwareConfig& cfg) : cfg_(cfg) {}

    void set_config(const SoftwareConfig& cfg);

    void init(runtime::InitContext& ctx) override;
    void reset() override;
    void step(runtime::ModuleContext& ctx) override;

private:
    void rebuild_program();

    SoftwareConfig cfg_;
    std::array<std::uint32_t, kProgSteps> prog_{};
    std::uint32_t base_scratch_ = 0;
    std::uint32_t cap_scratch_ = 0;
};

/// PRES_S: brake pressure sensing. Median-of-5 despiking of the ADC,
/// x4 scaling into SetValue units and slew-limited tracking.
class PresSModule final : public runtime::ModuleBehaviour {
public:
    static constexpr int kMaxSlewPerMs = 10;
    static constexpr std::uint32_t kTaps = 5;

    void init(runtime::InitContext& ctx) override;
    void reset() override;
    void step(runtime::ModuleContext& ctx) override;

private:
    std::array<std::uint32_t, kTaps> buf_{};
    std::uint32_t idx_ = 0;
    std::uint32_t filt_ = 0;
    std::uint32_t med_scratch_ = 0;
};

/// V_REG: pressure regulator. Feed-forward from SetValue plus PI action
/// on the SetValue-IsValue error (deadband wider than the 4-unit ADC
/// quantum so the loop settles instead of hunting, clamped integrator,
/// saturation-aware wind-up protection).
class VRegModule final : public runtime::ModuleBehaviour {
public:
    static constexpr std::int32_t kDeadband = 5;
    static constexpr std::int32_t kIntegLimit = 3000;

    void init(runtime::InitContext& ctx) override;
    void reset() override;
    void step(runtime::ModuleContext& ctx) override;

private:
    std::uint32_t integ_ = 0;
    std::uint32_t prev_out_ = 0;
    std::uint32_t err_scratch_ = 0;
};

/// PRES_A: valve actuation. Slew-limits the regulator output and
/// quantises it to the PWM resolution before writing TOC2.
class PresAModule final : public runtime::ModuleBehaviour {
public:
    static constexpr int kMaxSlewPerMs = 4096;
    static constexpr std::uint32_t kPwmMask = 0xfffcU;

    void init(runtime::InitContext& ctx) override;
    void reset() override;
    void step(runtime::ModuleContext& ctx) override;

private:
    std::uint32_t cmd_ = 0;
    std::uint32_t tgt_scratch_ = 0;
};

}  // namespace epea::target
