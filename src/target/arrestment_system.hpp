// The target system of the paper (§4): an aircraft arrestment plant —
// a braked cable that stops an incoming aircraft — controlled by six
// software modules (CLOCK, DIST_S, CALC, PRES_S, V_REG, PRES_A) that
// exchange thirteen signals. The software runs in a 1 ms slot schedule;
// the plant model supplies the hardware registers (PACNT, TIC1, TCNT,
// ADC) and consumes the PWM command (TOC2).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "model/system_model.hpp"
#include "runtime/environment.hpp"
#include "runtime/simulator.hpp"

namespace epea::target {

inline constexpr double kGravity = 9.81;  ///< [m/s^2]

/// Budget for one arrestment run; every golden run completes well below
/// this (longest case ~23 s at 1 tick = 1 ms).
inline constexpr runtime::Tick kMaxRunTicks = 30000;

/// One cell of the paper's 25-case test matrix (§5.3: five masses x five
/// engagement speeds).
struct TestCase {
    int id = 0;
    double mass_kg = 16000.0;
    double engage_speed_mps = 60.0;
};

/// The 5x5 matrix of standard test cases, id 0..24 (mass-major).
[[nodiscard]] std::vector<TestCase> standard_test_cases();

/// Constant retardation that stops the aircraft on the nominal 230 m of
/// cable run-out: a = v^2 / (2 * 230).
[[nodiscard]] double target_retardation(const TestCase& tc);

/// MIL-spec style limit on the net arresting force: the permissible hook
/// load grows with speed and shrinks as the aircraft slows.
[[nodiscard]] double max_retardation_force_n(double mass_kg, double speed_mps);

/// Physical constants of the plant (brake, cable drum, runway).
struct PlantConstants {
    double full_force_n = 400e3;       ///< brake force at full pressure
    double runway_limit_m = 335.0;     ///< available run-out before overrun
    double retardation_limit_g = 3.5;  ///< structural limit on the airframe
    double pulses_per_m = 8.0;      ///< cable-drum pulses per metre
    double tcnt_per_ms = 8.0;       ///< free-running timer rate
    double pressure_tau_ms = 50.0;  ///< first-order brake pressure lag
    double stop_speed_mps = 0.5;    ///< below this the cable holds static
    std::uint32_t settle_ticks = 450;  ///< post-stop dwell before "done"
};

/// Per-test-case parameters downloaded into the software before a run
/// (the paper's "pressure program" is derived from mass and speed).
struct SoftwareConfig {
    std::uint32_t plateau_pressure = 0;  ///< SetValue units (0..1020 scale)
    std::uint32_t slow_pressure = 0;     ///< crawl pressure near standstill
    std::uint32_t stop_age_counts = 0;   ///< TCNT-TIC1 age that means "stopped"
    std::uint32_t taper_end_ms = 0;      ///< program taper kick-in time
    std::uint32_t emergency_ms = 0;      ///< release-everything deadline

    [[nodiscard]] static SoftwareConfig for_test_case(const TestCase& tc,
                                                      const PlantConstants& pc);
};

/// Outcome classification of one run (§4.2: the arrestment fails if the
/// aircraft is not stopped within the distance/force/retardation limits).
struct FailureReport {
    bool stopped = false;
    double final_distance_m = 0.0;
    double peak_retardation_g = 0.0;
    double peak_force_ratio = 0.0;  ///< peak force / max_retardation_force_n
    bool retardation_exceeded = false;
    bool force_exceeded = false;
    bool overran_runway = false;

    [[nodiscard]] bool failed() const noexcept {
        return retardation_exceeded || force_exceeded || overran_runway ||
               !stopped;
    }
};

/// Builds the six-module, 25-pair signal topology of the target.
[[nodiscard]] model::SystemModel make_arrestment_model();

/// The arrestment hardware: aircraft + cable + hydraulic brake. Produces
/// the sensor registers each tick and integrates the command from TOC2.
class Plant final : public runtime::Environment {
public:
    Plant(const model::SystemModel& system, const PlantConstants& pc);

    void configure(const TestCase& tc);

    void reset() override;
    void sense(runtime::SignalStore& store, runtime::Tick now) override;
    void actuate(const runtime::SignalStore& store, runtime::Tick now) override;
    [[nodiscard]] bool finished() const override;

    [[nodiscard]] bool snapshot_supported() const override { return true; }
    void save_state(runtime::StateWriter& w) const override;
    void restore_state(runtime::StateReader& r) override;

    [[nodiscard]] FailureReport failure_report() const { return report_; }
    [[nodiscard]] const PlantConstants& constants() const { return pc_; }

private:
    model::SignalId sig_pacnt_;
    model::SignalId sig_tic1_;
    model::SignalId sig_tcnt_;
    model::SignalId sig_adc_;
    model::SignalId sig_toc2_;
    PlantConstants pc_;
    TestCase tc_;

    double speed_mps_ = 0.0;
    double distance_m_ = 0.0;
    double pressure_norm_ = 0.0;
    double cmd_norm_ = 0.0;
    double pulse_accum_ = 0.0;
    std::uint32_t pacnt_ = 0;
    std::uint32_t tic1_ = 0;
    std::uint32_t tcnt_ = 0;
    std::uint32_t settle_ = 0;
    FailureReport report_;
};

class DistSModule;
class CalcModule;
class ArrestmentBatchBackend;

/// The complete target: model + software behaviours + plant, wired into
/// a Simulator. configure() re-parameterises software and plant for a
/// test case; run_arrestment() resets and runs one arrestment.
class ArrestmentSystem {
public:
    ArrestmentSystem();
    ~ArrestmentSystem();
    ArrestmentSystem(const ArrestmentSystem&) = delete;
    ArrestmentSystem& operator=(const ArrestmentSystem&) = delete;

    void configure(const TestCase& tc);
    runtime::RunResult run_arrestment();

    [[nodiscard]] runtime::Simulator& sim() { return *sim_; }
    [[nodiscard]] const runtime::Simulator& sim() const { return *sim_; }
    [[nodiscard]] const model::SystemModel& system() const { return *model_; }
    [[nodiscard]] Plant& plant() { return *plant_; }
    [[nodiscard]] const Plant& plant() const { return *plant_; }

private:
    std::unique_ptr<model::SystemModel> model_;
    std::unique_ptr<Plant> plant_;
    std::unique_ptr<runtime::Simulator> sim_;
    // Fused SoA batch kernel (DESIGN.md §14), installed on sim_; must be
    // re-parameterised alongside the modules and the plant.
    std::unique_ptr<ArrestmentBatchBackend> batch_backend_;
    // Raw views into the behaviours owned by sim_, for reconfiguration.
    DistSModule* dist_ = nullptr;
    CalcModule* calc_ = nullptr;
};

}  // namespace epea::target
