// Fused SoA batch backend for the arrestment target (DESIGN.md §14).
//
// ArrestmentBatchBackend advances every live lane of a BatchState one
// tick by running the whole tick pipeline — plant sense, launch flips,
// frame loads, the six module behaviours, the armed EAs, plant actuate —
// directly on the word-major lane rows, as straight-line loops with no
// virtual dispatch, snapshot gather/scatter or trace recording. Each
// stage transcribes the scalar implementation operation-for-operation
// (including floating-point expression shapes), so lane state stays
// bit-identical to a scalar Simulator stepped from the same snapshot.
//
// begin() re-validates the contract per batch: the arrestment model
// (14 signals, six modules in schedule order), the registered memory
// word layout, the Plant's 16-word state stream, and a monitor set made
// exclusively of ExecutableAssertions. Anything else — a different
// target, armed recoverers/ERMs, an unknown monitor type — returns
// false, routing the batch to the target-agnostic ScalarLaneBackend.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "ea/assertion.hpp"
#include "runtime/batch.hpp"
#include "runtime/simulator.hpp"
#include "target/arrestment_system.hpp"

namespace epea::target {

class ArrestmentBatchBackend final : public runtime::BatchBackend {
public:
    explicit ArrestmentBatchBackend(runtime::Simulator& sim) noexcept : sim_(&sim) {}

    /// Mirrors ArrestmentSystem::configure — the kernel needs the
    /// software-config scalars (not registered as memory words) and the
    /// plant's test-case parameters.
    void configure(const SoftwareConfig& cfg, const TestCase& tc,
                   const PlantConstants& pc) noexcept {
        cfg_ = cfg;
        tc_ = tc;
        pc_ = pc;
    }

    [[nodiscard]] bool begin(runtime::BatchState& state) override;
    void step(runtime::BatchState& state, runtime::Tick now) override;

private:
    /// One-time resolution of signal/memory-word indices against the
    /// simulator's model and memory map; false = not the arrestment
    /// layout (memoized either way).
    [[nodiscard]] bool resolve();

    struct EaRef {
        std::size_t signal = 0;  ///< SignalId index the EA guards
        ea::EaParams params;
    };

    runtime::Simulator* sim_;
    SoftwareConfig cfg_{};
    TestCase tc_{};
    PlantConstants pc_{};

    int resolved_ = 0;  ///< 0 = not yet, 1 = ok, -1 = unsupported layout

    // Signal row indices (= SignalId index) and widths.
    std::size_t s_pacnt_ = 0, s_tic1_ = 0, s_tcnt_ = 0, s_adc_ = 0;
    std::size_t s_slot_ = 0, s_mscnt_ = 0, s_puls_ = 0, s_slow_ = 0, s_stop_ = 0;
    std::size_t s_i_ = 0, s_set_ = 0, s_is_ = 0, s_out_ = 0, s_toc2_ = 0;
    std::vector<std::uint8_t> sig_width_;

    // Memory word indices, resolved by registration label.
    std::size_t f_clock_i_ = 0;
    std::size_t f_dist_pacnt_ = 0, f_dist_tic1_ = 0, f_dist_tcnt_ = 0;
    std::size_t f_calc_i_ = 0, f_calc_mscnt_ = 0, f_calc_puls_ = 0;
    std::size_t f_calc_slow_ = 0, f_calc_stop_ = 0;
    std::size_t f_press_adc_ = 0;
    std::size_t f_vreg_set_ = 0, f_vreg_is_ = 0;
    std::size_t f_presa_out_ = 0;
    std::size_t m_clock_mscnt_ = 0, m_clock_slot0_ = 0;
    std::size_t m_d_prev_ = 0, m_d_puls_ = 0, m_d_bin0_ = 0, m_d_acc_ = 0;
    std::size_t m_d_phase_ = 0, m_d_binidx_ = 0, m_d_rate_ = 0;
    std::size_t m_d_slowdeb_ = 0, m_d_stopdeb_ = 0, m_d_latch_ = 0, m_d_delta_ = 0;
    std::size_t m_c_prog0_ = 0, m_c_base_ = 0, m_c_cap_ = 0;
    std::size_t m_p_buf0_ = 0, m_p_idx_ = 0, m_p_filt_ = 0, m_p_med_ = 0;
    std::size_t m_v_integ_ = 0, m_v_prev_ = 0, m_v_err_ = 0;
    std::size_t m_a_cmd_ = 0, m_a_tgt_ = 0;
    std::vector<std::uint8_t> mem_width_;

    // Frame word index per (module, port) for kFrame launch flips.
    std::vector<std::vector<std::size_t>> frame_word_;
    std::vector<std::vector<std::uint8_t>> frame_width_;
    std::vector<std::vector<std::size_t>> frame_src_;  ///< signal index per (module, port)

    // Armed EAs, refreshed every begin() (params are re-calibrated per
    // test case and monitors re-armed per experiment).
    std::vector<EaRef> eas_;
};

}  // namespace epea::target
