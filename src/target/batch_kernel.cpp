#include "target/batch_kernel.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <string>
#include <unordered_map>

#include "target/modules.hpp"
#include "util/bitops.hpp"

namespace epea::target {

namespace {

[[nodiscard]] constexpr std::int32_t clampi(std::int32_t v, std::int32_t lo,
                                            std::int32_t hi) noexcept {
    return v < lo ? lo : (v > hi ? hi : v);
}

[[nodiscard]] double getd(const std::uint64_t* row, std::size_t lane) noexcept {
    return std::bit_cast<double>(row[lane]);
}

void setd(std::uint64_t* row, std::size_t lane, double v) noexcept {
    row[lane] = std::bit_cast<std::uint64_t>(v);
}

// Plant state-stream word indices (Plant::save_state order).
enum EnvWord : std::size_t {
    kEnvSpeed = 0,
    kEnvDistance,
    kEnvPressure,
    kEnvCmd,
    kEnvPulseAccum,
    kEnvPacnt,
    kEnvTic1,
    kEnvTcnt,
    kEnvSettle,
    kEnvStopped,
    kEnvFinalDistance,
    kEnvPeakRetardation,
    kEnvPeakForceRatio,
    kEnvRetardationExceeded,
    kEnvForceExceeded,
    kEnvOverranRunway,
    kEnvWords,
};

}  // namespace

bool ArrestmentBatchBackend::resolve() {
    if (resolved_ != 0) return resolved_ > 0;
    resolved_ = -1;

    const model::SystemModel& model = sim_->system();
    if (model.signal_count() != 14 || model.module_count() != 6) return false;

    const auto sig = [&](const char* name, std::size_t& out) {
        const auto id = model.find_signal(name);
        if (!id) return false;
        out = id->index();
        return true;
    };
    if (!sig("PACNT", s_pacnt_) || !sig("TIC1", s_tic1_) || !sig("TCNT", s_tcnt_) ||
        !sig("ADC", s_adc_) || !sig("ms_slot_nbr", s_slot_) || !sig("mscnt", s_mscnt_) ||
        !sig("pulscnt", s_puls_) || !sig("slow_speed", s_slow_) ||
        !sig("stopped", s_stop_) || !sig("i", s_i_) || !sig("SetValue", s_set_) ||
        !sig("IsValue", s_is_) || !sig("OutValue", s_out_) || !sig("TOC2", s_toc2_)) {
        return false;
    }
    sig_width_.resize(model.signal_count());
    for (std::size_t s = 0; s < model.signal_count(); ++s) {
        sig_width_[s] = model.signal(model::SignalId{static_cast<std::uint32_t>(s)}).width;
    }

    static constexpr std::array<const char*, 6> kModuleOrder = {
        "CLOCK", "DIST_S", "CALC", "PRES_S", "V_REG", "PRES_A"};
    for (std::size_t m = 0; m < kModuleOrder.size(); ++m) {
        const auto mid = model.find_module(kModuleOrder[m]);
        if (!mid || mid->index() != m) return false;
    }

    const runtime::MemoryMap& memory = sim_->memory();
    std::unordered_map<std::string_view, std::size_t> by_label;
    mem_width_.resize(memory.word_count());
    for (std::size_t w = 0; w < memory.word_count(); ++w) {
        const runtime::MemWord& word = memory.word(w);
        by_label.emplace(word.label, w);
        mem_width_[w] = word.width;
    }
    if (by_label.size() != memory.word_count()) return false;  // duplicate labels

    const auto mem = [&](const std::string& label, std::size_t& out) {
        const auto it = by_label.find(label);
        if (it == by_label.end()) return false;
        out = it->second;
        return true;
    };
    const auto mem_run = [&](const std::string& stem, std::size_t count,
                             std::size_t& first) {
        // An indexed register block must occupy consecutive word slots so
        // the kernel can address element k as row (first + k).
        if (!mem(stem + "[0]", first)) return false;
        for (std::size_t k = 1; k < count; ++k) {
            std::size_t idx = 0;
            if (!mem(stem + "[" + std::to_string(k) + "]", idx) || idx != first + k) {
                return false;
            }
        }
        return true;
    };

    if (!mem("CLOCK.arg_i", f_clock_i_) || !mem("DIST_S.arg_PACNT", f_dist_pacnt_) ||
        !mem("DIST_S.arg_TIC1", f_dist_tic1_) || !mem("DIST_S.arg_TCNT", f_dist_tcnt_) ||
        !mem("CALC.arg_i", f_calc_i_) || !mem("CALC.arg_mscnt", f_calc_mscnt_) ||
        !mem("CALC.arg_pulscnt", f_calc_puls_) ||
        !mem("CALC.arg_slow_speed", f_calc_slow_) ||
        !mem("CALC.arg_stopped", f_calc_stop_) || !mem("PRES_S.arg_ADC", f_press_adc_) ||
        !mem("V_REG.arg_SetValue", f_vreg_set_) || !mem("V_REG.arg_IsValue", f_vreg_is_) ||
        !mem("PRES_A.arg_OutValue", f_presa_out_)) {
        return false;
    }
    if (!mem("CLOCK.mscnt", m_clock_mscnt_) ||
        !mem_run("CLOCK.slot_map", ClockModule::kSlots, m_clock_slot0_) ||
        !mem("DIST_S.prev", m_d_prev_) || !mem("DIST_S.pulscnt", m_d_puls_) ||
        !mem_run("DIST_S.bin", DistSModule::kBins, m_d_bin0_) ||
        !mem("DIST_S.acc", m_d_acc_) || !mem("DIST_S.phase", m_d_phase_) ||
        !mem("DIST_S.bin_idx", m_d_binidx_) || !mem("DIST_S.rate", m_d_rate_) ||
        !mem("DIST_S.slow_deb", m_d_slowdeb_) || !mem("DIST_S.stop_deb", m_d_stopdeb_) ||
        !mem("DIST_S.stop_latch", m_d_latch_) || !mem("DIST_S.delta", m_d_delta_) ||
        !mem_run("CALC.prog", CalcModule::kProgSteps, m_c_prog0_) ||
        !mem("CALC.base", m_c_base_) || !mem("CALC.cap", m_c_cap_) ||
        !mem_run("PRES_S.buf", PresSModule::kTaps, m_p_buf0_) ||
        !mem("PRES_S.idx", m_p_idx_) || !mem("PRES_S.filt", m_p_filt_) ||
        !mem("PRES_S.med", m_p_med_) || !mem("V_REG.integ", m_v_integ_) ||
        !mem("V_REG.prev_out", m_v_prev_) || !mem("V_REG.err", m_v_err_) ||
        !mem("PRES_A.cmd", m_a_cmd_) || !mem("PRES_A.tgt", m_a_tgt_)) {
        return false;
    }

    frame_word_.assign(model.module_count(), {});
    frame_width_.assign(model.module_count(), {});
    frame_src_.assign(model.module_count(), {});
    for (const model::ModuleId mid : model.all_modules()) {
        const auto& spec = model.module(mid);
        for (const model::SignalId in : spec.inputs) {
            std::size_t idx = 0;
            if (!mem(spec.name + ".arg_" + model.signal_name(in), idx)) return false;
            frame_word_[mid.index()].push_back(idx);
            frame_width_[mid.index()].push_back(model.signal(in).width);
            frame_src_[mid.index()].push_back(in.index());
        }
    }

    resolved_ = 1;
    return true;
}

bool ArrestmentBatchBackend::begin(runtime::BatchState& state) {
    if (!resolve()) return false;
    const runtime::SnapshotLayout& layout = state.layout();
    if (layout.signals != sim_->system().signal_count() ||
        layout.memory != sim_->memory().word_count() || layout.behaviours != 1 ||
        layout.environment != kEnvWords || layout.recoverers != 0 ||
        !sim_->recoverers().empty()) {
        return false;
    }
    eas_.clear();
    for (const runtime::SignalMonitor* m : sim_->monitors()) {
        const auto* ea = dynamic_cast<const ea::ExecutableAssertion*>(m);
        if (!ea) return false;
        eas_.push_back(EaRef{ea->signal().index(), ea->params()});
    }
    return layout.monitors == eas_.size() * 4;
}

void ArrestmentBatchBackend::step(runtime::BatchState& st, runtime::Tick now) {
    const std::size_t n = st.live();
    if (n == 0) return;
    const std::size_t W = st.width();
    std::uint32_t* const sig0 = st.signals_row(0);
    std::uint32_t* const mem0 = st.memory_row(0);
    const auto sg = [&](std::size_t s) noexcept { return sig0 + s * W; };
    const auto mw = [&](std::size_t w) noexcept { return mem0 + w * W; };

    // ------------------------------------------------------ plant sense
    // Transcribes Plant::sense exactly; the report booleans latch (only
    // ever set), matching the scalar FailureReport updates.
    {
        std::uint64_t* const e_speed = st.environment_row(kEnvSpeed);
        std::uint64_t* const e_dist = st.environment_row(kEnvDistance);
        std::uint64_t* const e_press = st.environment_row(kEnvPressure);
        std::uint64_t* const e_cmd = st.environment_row(kEnvCmd);
        std::uint64_t* const e_pulse = st.environment_row(kEnvPulseAccum);
        std::uint64_t* const e_pacnt = st.environment_row(kEnvPacnt);
        std::uint64_t* const e_tic1 = st.environment_row(kEnvTic1);
        std::uint64_t* const e_tcnt = st.environment_row(kEnvTcnt);
        std::uint64_t* const e_settle = st.environment_row(kEnvSettle);
        std::uint64_t* const e_stopped = st.environment_row(kEnvStopped);
        std::uint64_t* const e_final = st.environment_row(kEnvFinalDistance);
        std::uint64_t* const e_peakg = st.environment_row(kEnvPeakRetardation);
        std::uint64_t* const e_peakr = st.environment_row(kEnvPeakForceRatio);
        std::uint64_t* const e_rexc = st.environment_row(kEnvRetardationExceeded);
        std::uint64_t* const e_fexc = st.environment_row(kEnvForceExceeded);
        std::uint64_t* const e_over = st.environment_row(kEnvOverranRunway);
        std::uint32_t* const o_pacnt = sg(s_pacnt_);
        std::uint32_t* const o_tic1 = sg(s_tic1_);
        std::uint32_t* const o_tcnt = sg(s_tcnt_);
        std::uint32_t* const o_adc = sg(s_adc_);
        const unsigned w_pacnt = sig_width_[s_pacnt_];
        const unsigned w_tic1 = sig_width_[s_tic1_];
        const unsigned w_tcnt = sig_width_[s_tcnt_];
        const unsigned w_adc = sig_width_[s_adc_];
        // Locals defeat the conservative aliasing between the lane-row
        // stores and the plain-word members read every iteration.
        const double tau = pc_.pressure_tau_ms;
        const double full_force = pc_.full_force_n;
        const double mass = tc_.mass_kg;
        const double retard_limit = pc_.retardation_limit_g * kGravity;
        const double stop_speed = pc_.stop_speed_mps;
        const double runway_limit = pc_.runway_limit_m;
        const double pulses_per_m = pc_.pulses_per_m;
        const auto tcnt_step = static_cast<std::uint32_t>(pc_.tcnt_per_ms);

        for (std::size_t lane = 0; lane < n; ++lane) {
            double pressure = getd(e_press, lane);
            pressure += (getd(e_cmd, lane) - pressure) / tau;
            double speed = getd(e_speed, lane);
            double distance = getd(e_dist, lane);

            if (speed > 0.0) {
                const double force_n = pressure * full_force;
                const double a = force_n / mass;
                const double ratio = force_n / max_retardation_force_n(mass, speed);
                setd(e_peakg, lane, std::max(getd(e_peakg, lane), a / kGravity));
                setd(e_peakr, lane, std::max(getd(e_peakr, lane), ratio));
                if (a > retard_limit) e_rexc[lane] = 1;
                if (ratio >= 1.0) e_fexc[lane] = 1;

                speed -= a * 0.001;
                if (speed <= stop_speed) {
                    speed = 0.0;
                    e_stopped[lane] = 1;
                }
                distance += speed * 0.001;
            } else {
                e_settle[lane] += 1;
            }
            setd(e_final, lane, distance);
            if (distance > runway_limit) e_over[lane] = 1;

            double pulse = getd(e_pulse, lane);
            pulse += speed * 0.001 * pulses_per_m;
            std::uint32_t pacnt = static_cast<std::uint32_t>(e_pacnt[lane]);
            std::uint32_t tic1 = static_cast<std::uint32_t>(e_tic1[lane]);
            std::uint32_t tcnt = static_cast<std::uint32_t>(e_tcnt[lane]);
            if (pulse >= 1.0) {
                const auto pulses = static_cast<std::uint32_t>(pulse);
                pulse -= pulses;
                pacnt = (pacnt + pulses) & 0xffU;
                tic1 = tcnt;
            }
            tcnt = (tcnt + tcnt_step) & 0xffffU;

            setd(e_speed, lane, speed);
            setd(e_dist, lane, distance);
            setd(e_press, lane, pressure);
            setd(e_pulse, lane, pulse);
            e_pacnt[lane] = pacnt;
            e_tic1[lane] = tic1;
            e_tcnt[lane] = tcnt;

            o_pacnt[lane] = util::mask_width(pacnt, w_pacnt);
            o_tic1[lane] = util::mask_width(tic1, w_tic1);
            o_tcnt[lane] = util::mask_width(tcnt, w_tcnt);
            // Value-identical to the scalar's lround: the argument is
            // non-negative and far below 2^51 (pressure tracks a command
            // clamped to [0,1]), so adding an exactly-representable 0.5
            // and truncating rounds half-up == half-away-from-zero,
            // without the libm call.
            o_adc[lane] = util::mask_width(
                std::min<std::uint32_t>(
                    255, static_cast<std::uint32_t>(
                             std::max(0.0, pressure) * 255.0 + 0.5)),
                w_adc);
        }
    }

    // ------------------------------------------- signal-point launch flips
    const bool launching_any = st.launch_count() != 0;
    if (launching_any) {
        for (std::size_t lane = 0; lane < n; ++lane) {
            if (!st.launching(lane)) continue;
            const runtime::BatchFlip& f = st.flip(lane);
            if (f.point != runtime::BatchFlip::Point::kSignal) continue;
            std::uint32_t* row = sg(f.signal.index());
            row[lane] = util::flip_bit(row[lane], f.bit, sig_width_[f.signal.index()]);
        }
    }

    // ------------------------------------------------------- frame loads
    for (std::size_t m = 0; m < frame_word_.size(); ++m) {
        for (std::size_t p = 0; p < frame_word_[m].size(); ++p) {
            std::uint32_t* const dst = mw(frame_word_[m][p]);
            const std::uint32_t* const src = sg(frame_src_[m][p]);
            for (std::size_t lane = 0; lane < n; ++lane) dst[lane] = src[lane];
        }
    }

    // ----------------------------------- frame/memory-point launch flips
    if (launching_any) {
        for (std::size_t lane = 0; lane < n; ++lane) {
            if (!st.launching(lane)) continue;
            const runtime::BatchFlip& f = st.flip(lane);
            if (f.point == runtime::BatchFlip::Point::kFrame) {
                const std::size_t m = f.module.index();
                if (m < frame_word_.size() && f.port < frame_word_[m].size()) {
                    std::uint32_t* row = mw(frame_word_[m][f.port]);
                    row[lane] = util::flip_bit(row[lane], f.bit, frame_width_[m][f.port]);
                }
            } else if (f.point == runtime::BatchFlip::Point::kMemory) {
                std::uint32_t* row = mw(f.word_index);
                row[lane] = util::flip_bit(row[lane], f.bit, mem_width_[f.word_index]);
            }
        }
    }

    // ------------------------------------------------------------- CLOCK
    {
        std::uint32_t* const mscnt = mw(m_clock_mscnt_);
        const std::uint32_t* const arg_i = mw(f_clock_i_);
        std::uint32_t* const o_slot = sg(s_slot_);
        std::uint32_t* const o_mscnt = sg(s_mscnt_);
        const unsigned w_slot = sig_width_[s_slot_];
        const unsigned w_mscnt = sig_width_[s_mscnt_];
        for (std::size_t lane = 0; lane < n; ++lane) {
            const std::uint32_t m = (mscnt[lane] + 1) & 0xffffU;
            mscnt[lane] = m;
            const std::uint32_t slot =
                mw(m_clock_slot0_ + arg_i[lane] % ClockModule::kSlots)[lane];
            o_slot[lane] = util::mask_width(slot & 0xffU, w_slot);
            o_mscnt[lane] = util::mask_width(m, w_mscnt);
        }
    }

    // ------------------------------------------------------------ DIST_S
    {
        const std::uint32_t* const a_cnt = mw(f_dist_pacnt_);
        const std::uint32_t* const a_tic1 = mw(f_dist_tic1_);
        const std::uint32_t* const a_tcnt = mw(f_dist_tcnt_);
        std::uint32_t* const prev = mw(m_d_prev_);
        std::uint32_t* const pulscnt = mw(m_d_puls_);
        std::uint32_t* const acc = mw(m_d_acc_);
        std::uint32_t* const phase = mw(m_d_phase_);
        std::uint32_t* const bin_idx = mw(m_d_binidx_);
        std::uint32_t* const rate = mw(m_d_rate_);
        std::uint32_t* const slow_deb = mw(m_d_slowdeb_);
        std::uint32_t* const stop_deb = mw(m_d_stopdeb_);
        std::uint32_t* const stop_latch = mw(m_d_latch_);
        std::uint32_t* const delta_s = mw(m_d_delta_);
        std::uint64_t* const first = st.behaviours_row(0);
        std::uint32_t* const o_puls = sg(s_puls_);
        std::uint32_t* const o_slow = sg(s_slow_);
        std::uint32_t* const o_stop = sg(s_stop_);
        const unsigned w_puls = sig_width_[s_puls_];
        const std::uint32_t stop_age = cfg_.stop_age_counts;
        for (std::size_t lane = 0; lane < n; ++lane) {
            const std::uint32_t cnt = a_cnt[lane];
            std::uint32_t delta = (cnt - prev[lane]) & 0xffU;
            if (first[lane] != 0) {
                delta = 0;
                first[lane] = 0;
            }
            prev[lane] = cnt & 0xffU;
            if (delta > DistSModule::kMaxPlausibleDelta) {
                delta = DistSModule::kMaxPlausibleDelta;
            }
            delta_s[lane] = delta;

            pulscnt[lane] = (pulscnt[lane] + delta_s[lane]) & 0xffffU;

            acc[lane] = (acc[lane] + delta_s[lane]) & 0xffU;
            phase[lane] = (phase[lane] + 1) & 0xffU;
            if (phase[lane] >= DistSModule::kBinMs) {
                phase[lane] = 0;
                const std::uint32_t bi = bin_idx[lane] % DistSModule::kBins;
                std::uint32_t* const bin = mw(m_d_bin0_ + bi);
                rate[lane] = (rate[lane] + acc[lane] - bin[lane]) & 0xffffU;
                bin[lane] = acc[lane];
                acc[lane] = 0;
                bin_idx[lane] = (bi + 1) % DistSModule::kBins;
            }
            slow_deb[lane] = rate[lane] < DistSModule::kSlowRateThreshold
                                 ? std::min<std::uint32_t>(slow_deb[lane] + 1, 255)
                                 : 0;

            const std::uint32_t age = (a_tcnt[lane] - a_tic1[lane]) & 0xffffU;
            stop_deb[lane] = age > stop_age
                                 ? std::min<std::uint32_t>(stop_deb[lane] + 1, 255)
                                 : 0;
            if (stop_deb[lane] >= DistSModule::kStopDebounce) stop_latch[lane] = 1;

            o_puls[lane] = util::mask_width(pulscnt[lane], w_puls);
            o_slow[lane] = slow_deb[lane] >= DistSModule::kSlowDebounce ? 1U : 0U;
            o_stop[lane] = stop_latch[lane] != 0 ? 1U : 0U;
        }
    }

    // -------------------------------------------------------------- CALC
    {
        const std::uint32_t* const a_i = mw(f_calc_i_);
        const std::uint32_t* const a_mscnt = mw(f_calc_mscnt_);
        const std::uint32_t* const a_puls = mw(f_calc_puls_);
        const std::uint32_t* const a_slow = mw(f_calc_slow_);
        const std::uint32_t* const a_stop = mw(f_calc_stop_);
        std::uint32_t* const base_s = mw(m_c_base_);
        std::uint32_t* const cap_s = mw(m_c_cap_);
        std::uint32_t* const o_i = sg(s_i_);
        std::uint32_t* const o_set = sg(s_set_);
        const unsigned w_i = sig_width_[s_i_];
        const unsigned w_set = sig_width_[s_set_];
        const std::uint32_t taper_end = cfg_.taper_end_ms;
        const std::uint32_t slow_pressure = cfg_.slow_pressure;
        const std::uint32_t plateau = cfg_.plateau_pressure;
        const std::uint32_t emergency = cfg_.emergency_ms;
        for (std::size_t lane = 0; lane < n; ++lane) {
            const std::uint32_t i_in = a_i[lane] & 0xffffU;
            const std::uint32_t mscnt = a_mscnt[lane] & 0xffffU;
            const std::uint32_t pulscnt = a_puls[lane] & 0xffffU;
            const bool slow = a_slow[lane] != 0;
            const bool stopped = a_stop[lane] != 0;

            const std::uint32_t dist_target = pulscnt >> 5;
            std::uint32_t i_next = i_in;
            if (!stopped && dist_target > i_in) i_next = (i_in + 1) & 0xffffU;
            o_i[lane] = util::mask_width(i_next, w_i);

            const std::uint32_t prog_idx =
                std::min<std::uint32_t>(mscnt >> 9, CalcModule::kProgSteps - 1) %
                CalcModule::kProgSteps;
            std::uint32_t base = mw(m_c_prog0_ + prog_idx)[lane];
            if (mscnt >= taper_end) {
                const std::uint32_t rem = mscnt - taper_end;
                const std::uint32_t floor_p =
                    slow_pressure + CalcModule::kTaperFloorMargin;
                if (base > floor_p) {
                    base = rem >= CalcModule::kTaperMs
                               ? floor_p
                               : floor_p + (base - floor_p) *
                                               (CalcModule::kTaperMs - rem) /
                                               CalcModule::kTaperMs;
                }
            }
            base_s[lane] = base;

            cap_s[lane] = plateau * (16 + std::min<std::uint32_t>(i_in, 32)) / 32;

            std::uint32_t set = std::min(base_s[lane], cap_s[lane]);
            if (slow) set = slow_pressure;
            if (mscnt >= emergency) set = 0;
            o_set[lane] = util::mask_width(set & 0xffffU, w_set);
        }
    }

    // ------------------------------------------------------------ PRES_S
    {
        static_assert(PresSModule::kTaps == 5,
                      "median network below is specific to 5 taps");
        const std::uint32_t* const a_adc = mw(f_press_adc_);
        std::uint32_t* const idx = mw(m_p_idx_);
        std::uint32_t* const filt = mw(m_p_filt_);
        std::uint32_t* const med = mw(m_p_med_);
        std::uint32_t* const o_is = sg(s_is_);
        std::uint32_t* const b0 = mw(m_p_buf0_);
        std::uint32_t* const b1 = mw(m_p_buf0_ + 1);
        std::uint32_t* const b2 = mw(m_p_buf0_ + 2);
        std::uint32_t* const b3 = mw(m_p_buf0_ + 3);
        std::uint32_t* const b4 = mw(m_p_buf0_ + 4);
        const unsigned w_is = sig_width_[s_is_];
        const auto cswap = [](std::uint32_t& a, std::uint32_t& b) noexcept {
            const std::uint32_t lo = std::min(a, b);
            b = std::max(a, b);
            a = lo;
        };
        for (std::size_t lane = 0; lane < n; ++lane) {
            mw(m_p_buf0_ + idx[lane] % PresSModule::kTaps)[lane] = a_adc[lane] & 0xffU;
            idx[lane] = (idx[lane] + 1) % PresSModule::kTaps;
            // Median of the 5 taps via a branchless sorting network —
            // the same value std::sort's middle element yields.
            std::uint32_t s0 = b0[lane], s1 = b1[lane], s2 = b2[lane],
                          s3 = b3[lane], s4 = b4[lane];
            cswap(s0, s1);
            cswap(s3, s4);
            cswap(s2, s4);
            cswap(s2, s3);
            cswap(s0, s3);
            cswap(s0, s2);
            cswap(s1, s4);
            cswap(s1, s3);
            cswap(s1, s2);
            med[lane] = s2;

            const auto target = static_cast<std::int32_t>(s2 * 4);
            const auto prev = static_cast<std::int32_t>(filt[lane]);
            const std::int32_t delta =
                clampi(target - prev, -PresSModule::kMaxSlewPerMs,
                       PresSModule::kMaxSlewPerMs);
            filt[lane] = static_cast<std::uint32_t>(prev + delta) & 0xffffU;
            o_is[lane] = util::mask_width(filt[lane], w_is);
        }
    }

    // ------------------------------------------------------------- V_REG
    {
        const std::uint32_t* const a_set = mw(f_vreg_set_);
        const std::uint32_t* const a_is = mw(f_vreg_is_);
        std::uint32_t* const integ = mw(m_v_integ_);
        std::uint32_t* const prev_out = mw(m_v_prev_);
        std::uint32_t* const err_s = mw(m_v_err_);
        std::uint32_t* const o_out = sg(s_out_);
        const unsigned w_out = sig_width_[s_out_];
        for (std::size_t lane = 0; lane < n; ++lane) {
            const auto set = static_cast<std::int32_t>(a_set[lane] & 0xffffU);
            const auto is = static_cast<std::int32_t>(a_is[lane] & 0xffffU);

            std::int32_t err = set - is;
            if (err >= -VRegModule::kDeadband && err <= VRegModule::kDeadband) err = 0;
            err_s[lane] = static_cast<std::uint32_t>(err) & 0xffffU;
            const std::int32_t err_db = util::sign_extend(err_s[lane], 16);

            const bool saturated_low = prev_out[lane] == 0 && err_db < 0;
            const bool saturated_high = prev_out[lane] == 0xffffU && err_db > 0;
            std::int32_t ig = util::sign_extend(integ[lane], 16);
            if (!saturated_low && !saturated_high) {
                ig = clampi(ig + err_db / 4, -VRegModule::kIntegLimit,
                            VRegModule::kIntegLimit);
            }
            integ[lane] = static_cast<std::uint32_t>(ig) & 0xffffU;

            const std::int32_t ff = (set >> 2) * 256;
            const std::int32_t u = ff + err_db * 16 + ig * 4;
            prev_out[lane] = static_cast<std::uint32_t>(clampi(u, 0, 65535));
            o_out[lane] = util::mask_width(prev_out[lane], w_out);
        }
    }

    // ------------------------------------------------------------ PRES_A
    {
        const std::uint32_t* const a_out = mw(f_presa_out_);
        std::uint32_t* const cmd = mw(m_a_cmd_);
        std::uint32_t* const tgt = mw(m_a_tgt_);
        std::uint32_t* const o_toc2 = sg(s_toc2_);
        const unsigned w_toc2 = sig_width_[s_toc2_];
        for (std::size_t lane = 0; lane < n; ++lane) {
            tgt[lane] = a_out[lane] & 0xffffU;
            const std::int32_t diff = static_cast<std::int32_t>(tgt[lane]) -
                                      static_cast<std::int32_t>(cmd[lane]);
            cmd[lane] = static_cast<std::uint32_t>(
                            static_cast<std::int32_t>(cmd[lane]) +
                            clampi(diff, -PresAModule::kMaxSlewPerMs,
                                   PresAModule::kMaxSlewPerMs)) &
                        0xffffU;
            o_toc2[lane] = util::mask_width(cmd[lane] & PresAModule::kPwmMask, w_toc2);
        }
    }

    // ------------------------------------------------------ EAs (observe)
    for (std::size_t e = 0; e < eas_.size(); ++e) {
        const EaRef& ea = eas_[e];
        const std::uint32_t* const watched = sg(ea.signal);
        std::uint64_t* const last = st.monitors_row(4 * e);
        std::uint64_t* const have = st.monitors_row(4 * e + 1);
        std::uint64_t* const firstdet = st.monitors_row(4 * e + 2);
        std::uint64_t* const viol = st.monitors_row(4 * e + 3);
        for (std::size_t lane = 0; lane < n; ++lane) {
            const auto value = static_cast<std::int64_t>(watched[lane]);
            if (ea::ExecutableAssertion::violates(
                    ea.params, static_cast<std::int64_t>(last[lane]), value,
                    have[lane] != 0, now)) {
                viol[lane] += 1;
                if (firstdet[lane] == runtime::kInvalidTick) firstdet[lane] = now;
            }
            last[lane] = static_cast<std::uint64_t>(value);
            have[lane] = 1;
        }
    }

    // ---------------------------------------------------- plant actuate
    {
        std::uint64_t* const e_cmd = st.environment_row(kEnvCmd);
        std::uint64_t* const e_settle = st.environment_row(kEnvSettle);
        const std::uint64_t* const e_stopped = st.environment_row(kEnvStopped);
        const std::uint64_t* const e_over = st.environment_row(kEnvOverranRunway);
        const std::uint32_t* const toc2 = sg(s_toc2_);
        const std::uint64_t settle_ticks = pc_.settle_ticks;
        for (std::size_t lane = 0; lane < n; ++lane) {
            setd(e_cmd, lane,
                 std::clamp(static_cast<double>(toc2[lane]) / 65535.0, 0.0, 1.0));
            st.set_finished(lane, e_over[lane] != 0 ||
                                      (e_stopped[lane] != 0 &&
                                       e_settle[lane] >= settle_ticks));
        }
    }
}

}  // namespace epea::target
