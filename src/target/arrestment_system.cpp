#include "target/arrestment_system.hpp"

#include <algorithm>
#include <cmath>

#include "model/builder.hpp"
#include "target/batch_kernel.hpp"
#include "target/modules.hpp"

namespace epea::target {

namespace {

/// Nominal cable run-out the pressure program aims for [m].
constexpr double kNominalStopDistance = 230.0;

/// SetValue / IsValue full-scale (ADC full scale 255 x 4).
constexpr double kPressureScale = 1020.0;

}  // namespace

std::vector<TestCase> standard_test_cases() {
    std::vector<TestCase> out;
    int id = 0;
    for (const double mass : {8000.0, 12000.0, 16000.0, 20000.0, 25000.0}) {
        for (const double speed : {40.0, 50.0, 60.0, 70.0, 80.0}) {
            out.push_back(TestCase{id++, mass, speed});
        }
    }
    return out;
}

double target_retardation(const TestCase& tc) {
    return tc.engage_speed_mps * tc.engage_speed_mps / (2.0 * kNominalStopDistance);
}

double max_retardation_force_n(double mass_kg, double speed_mps) {
    return mass_kg * kGravity * (1.0 + speed_mps / 30.0);
}

SoftwareConfig SoftwareConfig::for_test_case(const TestCase& tc,
                                             const PlantConstants& pc) {
    const double a_t = target_retardation(tc);
    SoftwareConfig cfg;
    cfg.plateau_pressure = static_cast<std::uint32_t>(
        std::lround(kPressureScale * tc.mass_kg * a_t / pc.full_force_n));
    cfg.slow_pressure = std::max<std::uint32_t>(20, cfg.plateau_pressure / 5);
    cfg.stop_age_counts =
        static_cast<std::uint32_t>(std::lround(250.0 * pc.tcnt_per_ms));
    // Predicted arrestment time at the target retardation; the program
    // tapers off at 92% of it and releases everything at 250%.
    const double t_est_ms = 1000.0 * tc.engage_speed_mps / a_t;
    cfg.taper_end_ms = static_cast<std::uint32_t>(
        std::min(65535L, std::lround(0.92 * t_est_ms)));
    cfg.emergency_ms = static_cast<std::uint32_t>(
        std::min(65535L, std::lround(2.5 * t_est_ms)));
    return cfg;
}

model::SystemModel make_arrestment_model() {
    using model::SignalKind;
    model::SystemBuilder b;
    b.input("PACNT", SignalKind::kMonotonic, 8);
    b.input("TIC1", SignalKind::kContinuous, 16);
    b.input("TCNT", SignalKind::kMonotonic, 16);
    b.input("ADC", SignalKind::kContinuous, 8);
    b.intermediate("ms_slot_nbr", SignalKind::kDiscrete, 8);
    b.intermediate("mscnt", SignalKind::kMonotonic, 16);
    b.intermediate("pulscnt", SignalKind::kMonotonic, 16);
    b.intermediate("slow_speed", SignalKind::kBoolean, 1);
    b.intermediate("stopped", SignalKind::kBoolean, 1);
    b.intermediate("i", SignalKind::kMonotonic, 16);
    b.intermediate("SetValue", SignalKind::kContinuous, 16);
    b.intermediate("IsValue", SignalKind::kContinuous, 16);
    b.intermediate("OutValue", SignalKind::kContinuous, 16);
    b.output("TOC2", SignalKind::kContinuous, 16);

    b.module("CLOCK").in("i").out("ms_slot_nbr").out("mscnt");
    b.module("DIST_S")
        .in("PACNT")
        .in("TIC1")
        .in("TCNT")
        .out("pulscnt")
        .out("slow_speed")
        .out("stopped");
    b.module("CALC")
        .in("i")
        .in("mscnt")
        .in("pulscnt")
        .in("slow_speed")
        .in("stopped")
        .out("i")
        .out("SetValue");
    b.module("PRES_S").in("ADC").out("IsValue");
    b.module("V_REG").in("SetValue").in("IsValue").out("OutValue");
    b.module("PRES_A").in("OutValue").out("TOC2");
    return b.build();
}

// ------------------------------------------------------------------ Plant

Plant::Plant(const model::SystemModel& system, const PlantConstants& pc)
    : sig_pacnt_(system.signal_id("PACNT")),
      sig_tic1_(system.signal_id("TIC1")),
      sig_tcnt_(system.signal_id("TCNT")),
      sig_adc_(system.signal_id("ADC")),
      sig_toc2_(system.signal_id("TOC2")),
      pc_(pc) {}

void Plant::configure(const TestCase& tc) { tc_ = tc; }

void Plant::reset() {
    speed_mps_ = tc_.engage_speed_mps;
    distance_m_ = 0.0;
    pressure_norm_ = 0.0;
    cmd_norm_ = 0.0;
    pulse_accum_ = 0.0;
    pacnt_ = 0;
    tic1_ = 0;
    tcnt_ = 0;
    settle_ = 0;
    report_ = FailureReport{};
}

void Plant::sense(runtime::SignalStore& store, runtime::Tick /*now*/) {
    // Brake pressure follows the valve command with a first-order lag.
    pressure_norm_ += (cmd_norm_ - pressure_norm_) / pc_.pressure_tau_ms;

    if (speed_mps_ > 0.0) {
        const double force_n = pressure_norm_ * pc_.full_force_n;
        const double a = force_n / tc_.mass_kg;
        const double ratio =
            force_n / max_retardation_force_n(tc_.mass_kg, speed_mps_);
        report_.peak_retardation_g =
            std::max(report_.peak_retardation_g, a / kGravity);
        report_.peak_force_ratio = std::max(report_.peak_force_ratio, ratio);
        if (a > pc_.retardation_limit_g * kGravity) {
            report_.retardation_exceeded = true;
        }
        if (ratio >= 1.0) report_.force_exceeded = true;

        speed_mps_ -= a * 0.001;
        if (speed_mps_ <= pc_.stop_speed_mps) {
            // The cable holds the aircraft statically from here.
            speed_mps_ = 0.0;
            report_.stopped = true;
        }
        distance_m_ += speed_mps_ * 0.001;
    } else {
        ++settle_;
    }
    report_.final_distance_m = distance_m_;
    if (distance_m_ > pc_.runway_limit_m) report_.overran_runway = true;

    // Cable-drum pulses into the 8-bit counter; TIC1 captures the timer
    // at the most recent pulse, TCNT free-runs at tcnt_per_ms.
    pulse_accum_ += speed_mps_ * 0.001 * pc_.pulses_per_m;
    if (pulse_accum_ >= 1.0) {
        const auto pulses = static_cast<std::uint32_t>(pulse_accum_);
        pulse_accum_ -= pulses;
        pacnt_ = (pacnt_ + pulses) & 0xffU;
        tic1_ = tcnt_;
    }
    tcnt_ = (tcnt_ + static_cast<std::uint32_t>(pc_.tcnt_per_ms)) & 0xffffU;

    store.set(sig_pacnt_, pacnt_);
    store.set(sig_tic1_, tic1_);
    store.set(sig_tcnt_, tcnt_);
    store.set(sig_adc_, std::min<std::uint32_t>(
                            255, static_cast<std::uint32_t>(std::lround(
                                     std::max(0.0, pressure_norm_) * 255.0))));
}

void Plant::actuate(const runtime::SignalStore& store, runtime::Tick /*now*/) {
    cmd_norm_ = std::clamp(
        static_cast<double>(store.get(sig_toc2_)) / 65535.0, 0.0, 1.0);
}

bool Plant::finished() const {
    return report_.overran_runway ||
           (report_.stopped && settle_ >= pc_.settle_ticks);
}

void Plant::save_state(runtime::StateWriter& w) const {
    w.f64(speed_mps_);
    w.f64(distance_m_);
    w.f64(pressure_norm_);
    w.f64(cmd_norm_);
    w.f64(pulse_accum_);
    w.u32(pacnt_);
    w.u32(tic1_);
    w.u32(tcnt_);
    w.u32(settle_);
    w.boolean(report_.stopped);
    w.f64(report_.final_distance_m);
    w.f64(report_.peak_retardation_g);
    w.f64(report_.peak_force_ratio);
    w.boolean(report_.retardation_exceeded);
    w.boolean(report_.force_exceeded);
    w.boolean(report_.overran_runway);
}

void Plant::restore_state(runtime::StateReader& r) {
    speed_mps_ = r.f64();
    distance_m_ = r.f64();
    pressure_norm_ = r.f64();
    cmd_norm_ = r.f64();
    pulse_accum_ = r.f64();
    pacnt_ = r.u32();
    tic1_ = r.u32();
    tcnt_ = r.u32();
    settle_ = r.u32();
    report_.stopped = r.boolean();
    report_.final_distance_m = r.f64();
    report_.peak_retardation_g = r.f64();
    report_.peak_force_ratio = r.f64();
    report_.retardation_exceeded = r.boolean();
    report_.force_exceeded = r.boolean();
    report_.overran_runway = r.boolean();
}

// ------------------------------------------------------------- the system

ArrestmentSystem::ArrestmentSystem()
    : model_(std::make_unique<model::SystemModel>(make_arrestment_model())),
      plant_(std::make_unique<Plant>(*model_, PlantConstants{})) {
    const TestCase tc;
    const SoftwareConfig cfg = SoftwareConfig::for_test_case(tc, PlantConstants{});

    auto clock = std::make_unique<ClockModule>();
    auto dist = std::make_unique<DistSModule>(cfg);
    auto calc = std::make_unique<CalcModule>(cfg);
    auto pres_s = std::make_unique<PresSModule>();
    auto v_reg = std::make_unique<VRegModule>();
    auto pres_a = std::make_unique<PresAModule>();
    dist_ = dist.get();
    calc_ = calc.get();

    std::vector<std::unique_ptr<runtime::ModuleBehaviour>> behaviours;
    behaviours.push_back(std::move(clock));
    behaviours.push_back(std::move(dist));
    behaviours.push_back(std::move(calc));
    behaviours.push_back(std::move(pres_s));
    behaviours.push_back(std::move(v_reg));
    behaviours.push_back(std::move(pres_a));

    plant_->configure(tc);
    sim_ = std::make_unique<runtime::Simulator>(*model_, std::move(behaviours),
                                                *plant_);
    batch_backend_ = std::make_unique<ArrestmentBatchBackend>(*sim_);
    batch_backend_->configure(cfg, tc, plant_->constants());
    sim_->set_batch_backend(batch_backend_.get());
}

ArrestmentSystem::~ArrestmentSystem() = default;

void ArrestmentSystem::configure(const TestCase& tc) {
    const SoftwareConfig cfg = SoftwareConfig::for_test_case(tc, PlantConstants{});
    dist_->set_config(cfg);
    calc_->set_config(cfg);
    plant_->configure(tc);
    batch_backend_->configure(cfg, tc, plant_->constants());
}

runtime::RunResult ArrestmentSystem::run_arrestment() {
    sim_->reset();
    return sim_->run(kMaxRunTicks);
}

}  // namespace epea::target
