// Per-module I/O context fingerprints for the delta-campaign planner.
//
// A module's permeability matrix rows stay valid across a model edit as
// long as its *I/O context* is unchanged: the module name, its port
// signals (name / kind / width, in port order) and where each input
// comes from (producing module.port, or the environment). The context
// hash canonicalises exactly that — no more (so unrelated edits don't
// invalidate the module) and no less (so any edit that can change the
// module's measured rows does).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "model/system_model.hpp"

namespace epea::analytic {

/// Canonical human-readable context description of one module. Stable
/// across process runs; hashed with obs::fnv1a64 for compact comparison.
[[nodiscard]] std::string module_context(const model::SystemModel& system,
                                         model::ModuleId m);

/// FNV-1a 64-bit hash of module_context(), rendered as fixed-width hex.
[[nodiscard]] std::string module_context_hash(const model::SystemModel& system,
                                              model::ModuleId m);

/// Context hash of every module, keyed by module name (names are unique
/// per model, and name-keying lets two different SystemModel instances
/// be diffed).
[[nodiscard]] std::map<std::string, std::string> context_hashes(
    const model::SystemModel& system);

/// Whole-model fingerprint: hash over all module context strings plus
/// the signal table; equal hashes mean the delta planner will emit an
/// empty plan.
[[nodiscard]] std::string model_hash(const model::SystemModel& system);

}  // namespace epea::analytic
