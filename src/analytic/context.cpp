#include "analytic/context.hpp"

#include <sstream>

#include "obs/manifest.hpp"

namespace epea::analytic {

namespace {

void describe_signal(std::ostream& os, const model::SystemModel& system,
                     model::SignalId s) {
    const model::SignalSpec& spec = system.signal(s);
    os << spec.name << ':' << to_string(spec.role) << ':' << to_string(spec.kind)
       << ':' << static_cast<unsigned>(spec.width);
}

std::string hex64(std::uint64_t h) {
    std::ostringstream os;
    os << std::hex;
    for (int shift = 60; shift >= 0; shift -= 4) {
        os << ((h >> shift) & 0xF);
    }
    return os.str();
}

}  // namespace

std::string module_context(const model::SystemModel& system, model::ModuleId m) {
    const model::ModuleSpec& spec = system.module(m);
    std::ostringstream os;
    os << "module " << spec.name << '\n';
    for (std::size_t p = 0; p < spec.inputs.size(); ++p) {
        os << "in " << p << ' ';
        describe_signal(os, system, spec.inputs[p]);
        os << " from ";
        if (auto producer = system.producer_of(spec.inputs[p])) {
            os << system.module_name(producer->module) << '.' << producer->port;
        } else {
            os << "env";
        }
        os << '\n';
    }
    for (std::size_t p = 0; p < spec.outputs.size(); ++p) {
        os << "out " << p << ' ';
        describe_signal(os, system, spec.outputs[p]);
        os << '\n';
    }
    return os.str();
}

std::string module_context_hash(const model::SystemModel& system, model::ModuleId m) {
    return hex64(obs::fnv1a64(module_context(system, m)));
}

std::map<std::string, std::string> context_hashes(const model::SystemModel& system) {
    std::map<std::string, std::string> hashes;
    for (model::ModuleId m : system.all_modules()) {
        hashes[system.module_name(m)] = module_context_hash(system, m);
    }
    return hashes;
}

std::string model_hash(const model::SystemModel& system) {
    std::ostringstream os;
    for (model::SignalId s : system.all_signals()) {
        describe_signal(os, system, s);
        os << '\n';
    }
    for (model::ModuleId m : system.all_modules()) {
        os << module_context(system, m);
    }
    return hex64(obs::fnv1a64(os.str()));
}

}  // namespace epea::analytic
