// JSON reporters for `analytic predict` answers — shared between the
// CLI (`epea_tool analytic predict --json`) and the serve daemon
// (`POST /v1/analytic/predict`) so the two emit byte-identical bodies
// for the same query (serve_test proves it against the real binary).
// Both build a util::JsonValue (sorted keys, deterministic dump) and
// append the CLI's trailing newline.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analytic/engine.hpp"
#include "util/json.hpp"

namespace epea::analytic {

/// {"hi":...,"lo":...,"point":...} — the error-bar triple.
[[nodiscard]] util::JsonValue bound_json(const Bound& b);

/// Pair query: source → sink composed permeability.
[[nodiscard]] std::string predict_pair_json(const std::string& source,
                                            const std::string& sink,
                                            const Bound& permeability,
                                            bool converged);

/// One row of the full profile: exposure is nullopt for system inputs
/// (serialized as JSON null), impact is nullopt for the sink itself
/// (field omitted).
struct PredictRow {
    std::string signal;
    std::optional<Bound> exposure;
    std::optional<Bound> impact;
};

/// Full profile query: every signal's exposure + impact on `sink`.
[[nodiscard]] std::string predict_profile_json(const std::string& sink,
                                               const std::vector<PredictRow>& rows,
                                               bool converged);

}  // namespace epea::analytic
