// Analytic propagation engine (DESIGN.md §12) — answers permeability /
// exposure / impact queries *instantly* by composing the measured
// per-module permeability matrix through the signal graph, instead of
// spending an injection campaign per question.
//
// Semantics: an error born at `source` spreads along the non-zero
// permeability edges under the same independence assumption the paper
// applies to impact (Eq. 2). Cycles — the target feeds `i` back into
// CALC — are handled with the ≥2-length fixpoint treatment the matrix
// lint already applies to feedback products: the module-internal i→i
// self-loop is excluded, and the remaining cyclic system is iterated to
// a least fixpoint (Kleene iteration from ⊥, monotone, so it converges
// from below) with a configurable epsilon and iteration cap.
//
// Every answer carries error bars: each matrix cell's Wilson interval
// (from its affected/active estimation counts) is propagated through the
// same composition, which is monotone in every cell value, so running
// the fixpoint on the lo/point/hi cell values yields lo/point/hi bounds
// on the composed quantity.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "epic/matrix.hpp"

namespace epea::analytic {

/// A value with propagated Wilson-interval error bars. For analytically
/// set matrices (no estimation counts) lo == point == hi.
struct Bound {
    double lo = 0.0;
    double point = 0.0;
    double hi = 0.0;
};

struct EngineOptions {
    /// Fixpoint convergence threshold: iterate until no signal's
    /// visibility changed by more than epsilon.
    double epsilon = 1e-10;
    /// Iteration cap for cyclic graphs whose contraction is slow (a
    /// permeability-1.0 cycle never meets epsilon); the profile's
    /// `converged` flag records whether the cap was hit.
    std::size_t max_iterations = 256;
    /// Normal quantile of the per-cell Wilson intervals (95 %).
    double z = 1.96;
};

/// The reach profile of one error source: for every signal, the
/// composed probability that an error born at `source` becomes visible
/// there (source itself pinned at 1).
struct ReachProfile {
    model::SignalId source;
    std::vector<Bound> visibility;  ///< indexed by signal id
    std::size_t iterations = 0;
    bool converged = true;
};

class Engine {
public:
    /// `pm` (and its system) must outlive the engine.
    explicit Engine(const epic::PermeabilityMatrix& pm, EngineOptions options = {});

    [[nodiscard]] const model::SystemModel& system() const noexcept {
        return pm_->system();
    }
    [[nodiscard]] const EngineOptions& options() const noexcept { return options_; }

    /// Reach profile of `source` (cached per source after the first query).
    /// NOT thread-safe (mutates the per-source cache); concurrent callers
    /// must use solve() instead.
    [[nodiscard]] const ReachProfile& reach(model::SignalId source) const;

    /// Pure fixpoint solve of `source` — identical result to reach() but
    /// touches no mutable state, so a shared const Engine can be solved
    /// from many threads at once (the serve layer memoizes the profiles
    /// behind its own shard-locked cache).
    [[nodiscard]] ReachProfile solve(model::SignalId source) const;

    /// Composed source→sink permeability: the probability an error in
    /// `source` becomes visible at `sink`. The analytic counterpart of
    /// opt::visibility (and of epic::impact when `sink` is a system
    /// output). `source == sink` is the degenerate 1.0.
    [[nodiscard]] Bound permeability(model::SignalId source,
                                     model::SignalId sink) const;

    /// Eq.-2-style impact of `source` on `sink` — alias of permeability,
    /// kept for symmetry with epic::impact.
    [[nodiscard]] Bound impact(model::SignalId source, model::SignalId sink) const {
        return permeability(source, sink);
    }

    /// Signal error exposure X_s with error bars (Table 2): sum of the
    /// producing module's permeabilities into `s`. System inputs have no
    /// producer and therefore no exposure (nullopt), matching
    /// epic::signal_exposure point-wise.
    [[nodiscard]] std::optional<Bound> exposure(model::SignalId s) const;

    /// True when any reach() call so far hit the iteration cap.
    [[nodiscard]] bool any_unconverged() const noexcept { return any_unconverged_; }

    /// Number of fixpoint solves executed (cache misses).
    [[nodiscard]] std::size_t solves() const noexcept { return solves_; }

private:
    struct Edge {
        std::uint32_t from = 0;  ///< signal index the error enters on
        Bound p;                 ///< cell permeability with Wilson bounds
    };

    const epic::PermeabilityMatrix* pm_;
    EngineOptions options_;
    /// incoming_[t]: all permeability edges into signal t (module-internal
    /// self-loops u == t excluded per the ≥2-length rule).
    std::vector<std::vector<Edge>> incoming_;
    mutable std::vector<std::optional<ReachProfile>> cache_;
    mutable bool any_unconverged_ = false;
    mutable std::size_t solves_ = 0;
};

}  // namespace epea::analytic
