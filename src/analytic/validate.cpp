#include "analytic/validate.hpp"

#include <algorithm>
#include <cmath>

#include "alt/tank_system.hpp"
#include "epic/measures.hpp"
#include "exp/paper_data.hpp"
#include "fi/comparison.hpp"
#include "fi/fastpath.hpp"
#include "fi/injection.hpp"
#include "fi/injector.hpp"
#include "opt/benefit.hpp"
#include "prove/graph.hpp"
#include "prove/prover.hpp"
#include "synth/generator.hpp"
#include "target/arrestment_system.hpp"
#include "util/rng.hpp"

namespace epea::analytic {

namespace {

double abs_diff(double a, double b) { return a > b ? a - b : b - a; }

}  // namespace

util::JsonValue EnumerationCheck::to_json() const {
    util::JsonObject o;
    o.emplace("pairs", util::JsonValue(pairs));
    o.emplace("max_abs_diff", util::JsonValue(max_abs_diff));
    o.emplace("mean_abs_diff", util::JsonValue(mean_abs_diff));
    o.emplace("exposure_max_abs_diff", util::JsonValue(exposure_max_abs_diff));
    o.emplace("all_converged", util::JsonValue(all_converged));
    util::JsonObject w;
    w.emplace("source", util::JsonValue(worst.source));
    w.emplace("observer", util::JsonValue(worst.observer));
    w.emplace("analytic", util::JsonValue(worst.analytic));
    w.emplace("reference", util::JsonValue(worst.reference));
    o.emplace("worst", util::JsonValue(std::move(w)));
    return util::JsonValue(std::move(o));
}

EnumerationCheck enumeration_check(const epic::PermeabilityMatrix& pm,
                                   const EngineOptions& engine_options) {
    const model::SystemModel& system = pm.system();
    Engine engine(pm, engine_options);
    EnumerationCheck check;
    double sum = 0.0;
    for (const model::SignalId source : system.all_signals()) {
        for (const model::SignalId observer : system.all_signals()) {
            if (source == observer) continue;
            const double composed = engine.permeability(source, observer).point;
            const double exact = opt::visibility(pm, source, observer);
            const double d = abs_diff(composed, exact);
            ++check.pairs;
            sum += d;
            if (d > check.max_abs_diff) {
                check.max_abs_diff = d;
                check.worst = PairDeviation{system.signal_name(source),
                                            system.signal_name(observer), composed,
                                            exact};
            }
        }
        check.all_converged &= engine.reach(source).converged;
    }
    check.mean_abs_diff = check.pairs ? sum / static_cast<double>(check.pairs) : 0.0;
    for (const model::SignalId s : system.all_signals()) {
        const auto composed = engine.exposure(s);
        const auto exact = epic::signal_exposure(pm, s);
        if (composed.has_value() != exact.has_value()) {
            check.exposure_max_abs_diff = 1.0;  // structural disagreement
            continue;
        }
        if (composed) {
            check.exposure_max_abs_diff = std::max(
                check.exposure_max_abs_diff, abs_diff(composed->point, *exact));
        }
    }
    return check;
}

util::JsonValue ExactnessCheck::to_json() const {
    util::JsonObject o;
    o.emplace("pairs", util::JsonValue(pairs));
    o.emplace("mismatches", util::JsonValue(mismatches));
    util::JsonObject w;
    w.emplace("source", util::JsonValue(worst.source));
    w.emplace("observer", util::JsonValue(worst.observer));
    w.emplace("analytic", util::JsonValue(worst.analytic));
    w.emplace("prover", util::JsonValue(worst.reference > 0.0));
    o.emplace("worst", util::JsonValue(std::move(w)));
    return util::JsonValue(std::move(o));
}

ExactnessCheck exactness_check(const epic::PermeabilityMatrix& pm,
                               const EngineOptions& engine_options) {
    const model::SystemModel& system = pm.system();
    Engine engine(pm, engine_options);
    const prove::SignalGraph graph = prove::SignalGraph::from_matrix(pm);
    const prove::Prover prover(graph);
    ExactnessCheck check;
    for (const model::SignalId source : system.all_signals()) {
        for (const model::SignalId observer : system.all_signals()) {
            if (source == observer) continue;
            const double composed = engine.permeability(source, observer).point;
            const bool reaches =
                prover.path_exists(static_cast<std::uint32_t>(source.index()),
                                   static_cast<std::uint32_t>(observer.index()));
            ++check.pairs;
            if ((composed > 0.0) != reaches) {
                if (check.mismatches++ == 0) {
                    check.worst = PairDeviation{system.signal_name(source),
                                                system.signal_name(observer),
                                                composed, reaches ? 1.0 : 0.0};
                }
            }
        }
    }
    return check;
}

epic::PermeabilityMatrix uniform_matrix(const model::SystemModel& system, double p) {
    epic::PermeabilityMatrix pm(system);
    for (const epic::PairEntry& e : pm.entries()) {
        pm.set(e.module, e.in_port, e.out_port, p);
    }
    return pm;
}

util::JsonValue CampaignCheck::to_json() const {
    util::JsonObject o;
    util::JsonArray row_array;
    for (const CampaignRow& r : rows) {
        util::JsonObject ro;
        ro.emplace("input", util::JsonValue(r.input));
        ro.emplace("output", util::JsonValue(r.output));
        ro.emplace("measured", util::JsonValue(r.measured.point));
        ro.emplace("measured_lo", util::JsonValue(r.measured.lo));
        ro.emplace("measured_hi", util::JsonValue(r.measured.hi));
        ro.emplace("active", util::JsonValue(r.measured.trials));
        ro.emplace("analytic", util::JsonValue(r.analytic.point));
        ro.emplace("analytic_lo", util::JsonValue(r.analytic.lo));
        ro.emplace("analytic_hi", util::JsonValue(r.analytic.hi));
        ro.emplace("abs_diff", util::JsonValue(r.abs_diff()));
        row_array.emplace_back(std::move(ro));
    }
    o.emplace("rows", util::JsonValue(std::move(row_array)));
    o.emplace("max_abs_diff", util::JsonValue(max_abs_diff));
    o.emplace("runs", util::JsonValue(runs));
    return util::JsonValue(std::move(o));
}

CampaignCheck campaign_check(const exp::CampaignOptions& options,
                             const EngineOptions& engine_options) {
    target::ArrestmentSystem sys;
    const epic::PermeabilityMatrix pm =
        exp::estimate_arrestment_permeability(sys, options);
    Engine engine(pm, engine_options);
    const model::SystemModel& system = sys.system();

    const std::vector<model::SignalId> inputs =
        system.signals_with_role(model::SignalRole::kSystemInput);
    const std::vector<model::SignalId> outputs =
        system.signals_with_role(model::SignalRole::kSystemOutput);

    // End-to-end measurement with the same sizing: inject every bit of
    // every system input at stratified moments and record whether the
    // system output ever deviates from the golden run.
    struct Count {
        std::uint64_t affected = 0;
        std::uint64_t active = 0;
    };
    std::vector<std::vector<Count>> counts(inputs.size(),
                                           std::vector<Count>(outputs.size()));

    const auto cases = target::standard_test_cases();
    const std::size_t case_count = std::min(
        options.case_count, cases.size() - std::min(options.case_first, cases.size()));
    fi::Injector injector(sys.sim());
    fi::InjectionRunner runner(sys.sim(), injector);
    runner.set_enabled(options.use_fastpath);
    fi::GoldenCache cache;

    CampaignCheck check;
    for (std::size_t c = 0; c < case_count; ++c) {
        const std::size_t case_id = options.case_first + c;
        // A stream of its own (offset by a fixed tag) — the end-to-end
        // prong is an independent measurement, not a replay of the
        // estimator's module-level streams.
        std::uint64_t stream = options.seed + 0xe2ee2eULL + case_id;
        util::Rng time_rng(util::splitmix64(stream));
        sys.configure(cases[case_id]);
        injector.disarm();
        const bool fast = options.use_fastpath && sys.sim().snapshot_supported();
        const auto golden = cache.get_or_capture(
            fi::golden_key(fast ? "perm" : "trace", case_id),
            [&] { return fi::capture_golden_data(sys.sim(), options.max_ticks, fast); },
            nullptr);
        runner.set_golden(fast ? golden : nullptr);
        const fi::GoldenRun& gr = golden->run;

        for (std::size_t si = 0; si < inputs.size(); ++si) {
            const unsigned width = system.signal(inputs[si]).width;
            for (unsigned bit = 0; bit < width; ++bit) {
                const auto ticks =
                    fi::spread_ticks(0, gr.length, options.times_per_bit, &time_rng);
                for (const runtime::Tick t : ticks) {
                    runner.run({fi::Injection::into_signal(inputs[si], bit, t)},
                               options.max_ticks);
                    ++check.runs;
                    if (injector.fired_count() == 0) continue;  // inactive
                    for (std::size_t oi = 0; oi < outputs.size(); ++oi) {
                        ++counts[si][oi].active;
                        if (fi::first_difference(gr, *sys.sim().trace(), outputs[oi])) {
                            ++counts[si][oi].affected;
                        }
                    }
                }
            }
        }
    }
    injector.disarm();

    for (std::size_t si = 0; si < inputs.size(); ++si) {
        for (std::size_t oi = 0; oi < outputs.size(); ++oi) {
            CampaignRow row;
            row.input = system.signal_name(inputs[si]);
            row.output = system.signal_name(outputs[oi]);
            row.measured =
                util::wilson_interval(counts[si][oi].affected, counts[si][oi].active,
                                      engine_options.z);
            row.analytic = engine.permeability(inputs[si], outputs[oi]);
            check.max_abs_diff = std::max(check.max_abs_diff, row.abs_diff());
            check.rows.push_back(std::move(row));
        }
    }
    return check;
}

util::JsonValue SynthSweep::to_json() const {
    util::JsonObject o;
    o.emplace("graphs", util::JsonValue(graphs));
    o.emplace("cyclic_graphs", util::JsonValue(cyclic_graphs));
    o.emplace("max_abs_diff_acyclic", util::JsonValue(max_abs_diff_acyclic));
    o.emplace("max_abs_diff_cyclic", util::JsonValue(max_abs_diff_cyclic));
    o.emplace("all_converged", util::JsonValue(all_converged));
    o.emplace("exactness_mismatches", util::JsonValue(exactness_mismatches));
    return util::JsonValue(std::move(o));
}

SynthSweep synth_sweep(std::size_t graphs, std::uint64_t seed,
                       const EngineOptions& engine_options) {
    SynthSweep sweep;
    sweep.graphs = graphs;
    for (std::size_t g = 0; g < graphs; ++g) {
        synth::LayeredOptions lopt;
        lopt.seed = seed + g;
        const bool cyclic = g % 2 == 1;  // odd graphs get feedback edges
        lopt.cycle_density = cyclic ? 0.25 : 0.0;
        const synth::SyntheticSystem sys = synth::random_layered_system(lopt);
        const EnumerationCheck check = enumeration_check(sys.matrix, engine_options);
        sweep.exactness_mismatches +=
            exactness_check(sys.matrix, engine_options).mismatches;
        if (cyclic) {
            ++sweep.cyclic_graphs;
            sweep.max_abs_diff_cyclic =
                std::max(sweep.max_abs_diff_cyclic, check.max_abs_diff);
        } else {
            sweep.max_abs_diff_acyclic =
                std::max(sweep.max_abs_diff_acyclic, check.max_abs_diff);
        }
        sweep.all_converged &= check.all_converged;
    }
    return sweep;
}

ValidateResult validate_arrestment(const ValidateOptions& options) {
    ValidateResult result;
    util::JsonObject report;

    // Prong 1: Table-1 matrix, engine vs exact enumeration (Table 2/5).
    target::ArrestmentSystem sys;
    const epic::PermeabilityMatrix paper = exp::paper_matrix(sys.system());
    const EnumerationCheck enumeration = enumeration_check(paper, options.engine);
    const bool enum_pass =
        enumeration.max_abs_diff <= options.enumeration_tolerance &&
        enumeration.exposure_max_abs_diff <= 1e-9 && enumeration.all_converged;
    {
        util::JsonObject prong;
        prong.emplace("check", enumeration.to_json());
        prong.emplace("tolerance", util::JsonValue(options.enumeration_tolerance));
        prong.emplace("pass", util::JsonValue(enum_pass));
        report.emplace("enumeration", util::JsonValue(std::move(prong)));
    }
    result.pass = enum_pass;

    // Prong 1b: structural exactness on the hand-written targets — engine
    // reach positivity must agree with the prover's path-existence on the
    // paper matrix and on a uniform tank matrix (the tank ships without a
    // measured matrix, so every structural pair gets permeability 0.5).
    {
        const ExactnessCheck paper_exact = exactness_check(paper, options.engine);
        const model::SystemModel tank = alt::make_tank_model();
        const ExactnessCheck tank_exact =
            exactness_check(uniform_matrix(tank, 0.5), options.engine);
        const bool exact_pass =
            paper_exact.mismatches == 0 && tank_exact.mismatches == 0;
        util::JsonObject prong;
        prong.emplace("paper", paper_exact.to_json());
        prong.emplace("tank", tank_exact.to_json());
        prong.emplace("pass", util::JsonValue(exact_pass));
        report.emplace("exactness", util::JsonValue(std::move(prong)));
        result.pass = result.pass && exact_pass;
    }

    // Prong 2: measured matrix, engine vs end-to-end campaign truth.
    if (options.run_campaign) {
        const CampaignCheck campaign = campaign_check(options.campaign, options.engine);
        const bool campaign_pass = campaign.max_abs_diff <= options.campaign_tolerance;
        util::JsonObject prong;
        prong.emplace("check", campaign.to_json());
        prong.emplace("cases", util::JsonValue(options.campaign.case_count));
        prong.emplace("times_per_bit", util::JsonValue(options.campaign.times_per_bit));
        prong.emplace("tolerance", util::JsonValue(options.campaign_tolerance));
        prong.emplace("pass", util::JsonValue(campaign_pass));
        report.emplace("campaign", util::JsonValue(std::move(prong)));
        result.pass = result.pass && campaign_pass;
    }

    // Prong 3: synthetic corpus — divergence map, not a gate (cyclic
    // fixpoint vs simple-path enumeration *should* disagree; the report
    // quantifies by how much). Only convergence is gated.
    if (options.run_synth) {
        const SynthSweep sweep =
            synth_sweep(options.synth_graphs, options.synth_seed, options.engine);
        const bool synth_pass =
            sweep.all_converged && sweep.exactness_mismatches == 0;
        util::JsonObject prong;
        prong.emplace("check", sweep.to_json());
        prong.emplace("pass", util::JsonValue(synth_pass));
        report.emplace("synth", util::JsonValue(std::move(prong)));
        result.pass = result.pass && synth_pass;
    }

    report.emplace("pass", util::JsonValue(result.pass));
    result.report = util::JsonValue(std::move(report));
    return result;
}

}  // namespace epea::analytic
