#include "analytic/report.hpp"

namespace epea::analytic {

util::JsonValue bound_json(const Bound& b) {
    util::JsonObject o;
    o.emplace("lo", util::JsonValue(b.lo));
    o.emplace("point", util::JsonValue(b.point));
    o.emplace("hi", util::JsonValue(b.hi));
    return util::JsonValue(std::move(o));
}

std::string predict_pair_json(const std::string& source, const std::string& sink,
                              const Bound& permeability, bool converged) {
    util::JsonObject o;
    o.emplace("source", util::JsonValue(source));
    o.emplace("sink", util::JsonValue(sink));
    o.emplace("permeability", bound_json(permeability));
    o.emplace("converged", util::JsonValue(converged));
    return util::JsonValue(std::move(o)).dump() + "\n";
}

std::string predict_profile_json(const std::string& sink,
                                 const std::vector<PredictRow>& rows,
                                 bool converged) {
    util::JsonArray signals;
    for (const PredictRow& r : rows) {
        util::JsonObject row;
        row.emplace("signal", util::JsonValue(r.signal));
        row.emplace("exposure",
                    r.exposure ? bound_json(*r.exposure) : util::JsonValue(nullptr));
        if (r.impact) row.emplace("impact", bound_json(*r.impact));
        signals.emplace_back(std::move(row));
    }
    util::JsonObject o;
    o.emplace("sink", util::JsonValue(sink));
    o.emplace("signals", util::JsonValue(std::move(signals)));
    o.emplace("converged", util::JsonValue(converged));
    return util::JsonValue(std::move(o)).dump() + "\n";
}

}  // namespace epea::analytic
