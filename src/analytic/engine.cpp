#include "analytic/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"

namespace epea::analytic {

namespace {

Bound cell_bound(const util::Proportion& counts, double value, double z) {
    if (counts.trials == 0) {
        // Analytically set matrix: no estimation counts, no uncertainty.
        return Bound{value, value, value};
    }
    util::Proportion p = util::wilson_interval(counts.hits, counts.trials, z);
    return Bound{p.lo, p.point, p.hi};
}

}  // namespace

Engine::Engine(const epic::PermeabilityMatrix& pm, EngineOptions options)
    : pm_(&pm), options_(options) {
    const model::SystemModel& sys = pm.system();
    incoming_.resize(sys.signal_count());
    cache_.resize(sys.signal_count());
    for (model::ModuleId m : sys.all_modules()) {
        const model::ModuleSpec& spec = sys.module(m);
        for (std::uint32_t i = 0; i < spec.input_count(); ++i) {
            for (std::uint32_t k = 0; k < spec.output_count(); ++k) {
                model::SignalId from = spec.inputs[i];
                model::SignalId to = spec.outputs[k];
                // Same-signal module-internal loop (CALC's i -> i): the
                // paper's cycle treatment only counts cycles of length
                // >= 2, so this edge is dropped from composition.
                if (from == to) continue;
                Bound p = cell_bound(pm.counts(m, i, k), pm.get(m, i, k), options_.z);
                if (p.hi <= 0.0) continue;  // structurally dead edge
                incoming_[to.index()].push_back(Edge{from.value, p});
            }
        }
    }
}

const ReachProfile& Engine::reach(model::SignalId source) const {
    if (!source.valid() || source.index() >= cache_.size()) {
        throw std::out_of_range("analytic::Engine::reach: invalid source signal");
    }
    std::optional<ReachProfile>& slot = cache_[source.index()];
    if (slot) return *slot;

    ReachProfile profile = solve(source);
    if (!profile.converged) any_unconverged_ = true;
    ++solves_;
    slot = std::move(profile);
    return *slot;
}

ReachProfile Engine::solve(model::SignalId source) const {
    if (!source.valid() || source.index() >= incoming_.size()) {
        throw std::out_of_range("analytic::Engine::solve: invalid source signal");
    }
    const std::size_t n = incoming_.size();
    ReachProfile profile;
    profile.source = source;
    profile.visibility.assign(n, Bound{});
    profile.visibility[source.index()] = Bound{1.0, 1.0, 1.0};

    // Kleene iteration from bottom: each signal's visibility is the
    // noisy-OR of its incoming edges, v[t] = 1 - prod (1 - v[u] * p).
    // The update is monotone in every v[u] and every cell value, so the
    // lo/point/hi systems can be iterated side by side and each converges
    // from below to its least fixpoint.
    std::vector<Bound> next(n);
    std::size_t iter = 0;
    bool converged = false;
    for (; iter < options_.max_iterations; ++iter) {
        double delta = 0.0;
        for (std::size_t t = 0; t < n; ++t) {
            if (t == source.index()) {
                next[t] = profile.visibility[t];
                continue;
            }
            double miss_lo = 1.0, miss_pt = 1.0, miss_hi = 1.0;
            for (const Edge& e : incoming_[t]) {
                const Bound& v = profile.visibility[e.from];
                miss_lo *= 1.0 - v.lo * e.p.lo;
                miss_pt *= 1.0 - v.point * e.p.point;
                miss_hi *= 1.0 - v.hi * e.p.hi;
            }
            Bound nv{1.0 - miss_lo, 1.0 - miss_pt, 1.0 - miss_hi};
            const Bound& ov = profile.visibility[t];
            delta = std::max({delta, std::abs(nv.lo - ov.lo),
                              std::abs(nv.point - ov.point),
                              std::abs(nv.hi - ov.hi)});
            next[t] = nv;
        }
        profile.visibility.swap(next);
        if (delta <= options_.epsilon) {
            converged = true;
            ++iter;
            break;
        }
    }
    profile.iterations = iter;
    profile.converged = converged;
    return profile;
}

Bound Engine::permeability(model::SignalId source, model::SignalId sink) const {
    if (!sink.valid() || sink.index() >= incoming_.size()) {
        throw std::out_of_range("analytic::Engine::permeability: invalid sink signal");
    }
    return reach(source).visibility[sink.index()];
}

std::optional<Bound> Engine::exposure(model::SignalId s) const {
    const model::SystemModel& sys = pm_->system();
    std::optional<model::PortRef> producer = sys.producer_of(s);
    if (!producer) return std::nullopt;  // system input: no exposure
    const model::ModuleSpec& spec = sys.module(producer->module);
    // X_s is a direct sum over the producing module's inputs (Table 2) —
    // no composition, so the bounds are just summed cell bounds.
    Bound x{0.0, 0.0, 0.0};
    for (std::uint32_t i = 0; i < spec.input_count(); ++i) {
        Bound c = cell_bound(pm_->counts(producer->module, i, producer->port),
                             pm_->get(producer->module, i, producer->port),
                             options_.z);
        x.lo += c.lo;
        x.point += c.point;
        x.hi += c.hi;
    }
    return x;
}

}  // namespace epea::analytic
