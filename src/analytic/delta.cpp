#include "analytic/delta.hpp"

#include <algorithm>
#include <stdexcept>

#include "analysis/campaign_lint.hpp"
#include "analytic/context.hpp"
#include "obs/manifest.hpp"

namespace epea::analytic {

std::vector<std::string> DeltaPlan::stale_modules() const {
    std::vector<std::string> stale = changed;
    stale.insert(stale.end(), added.begin(), added.end());
    std::sort(stale.begin(), stale.end());
    return stale;
}

util::JsonValue DeltaPlan::to_json() const {
    const auto names = [](const std::vector<std::string>& v) {
        util::JsonArray a;
        for (const auto& n : v) a.emplace_back(n);
        return util::JsonValue(std::move(a));
    };
    util::JsonObject o;
    o.emplace("unchanged", names(unchanged));
    o.emplace("changed", names(changed));
    o.emplace("added", names(added));
    o.emplace("removed", names(removed));
    o.emplace("empty", util::JsonValue(empty()));
    return util::JsonValue(std::move(o));
}

DeltaPlan diff_models(const model::SystemModel& old_model,
                      const model::SystemModel& new_model) {
    const std::map<std::string, std::string> old_hashes = context_hashes(old_model);
    const std::map<std::string, std::string> new_hashes = context_hashes(new_model);
    DeltaPlan plan;
    for (const auto& [name, hash] : new_hashes) {
        const auto it = old_hashes.find(name);
        if (it == old_hashes.end()) {
            plan.added.push_back(name);
        } else if (it->second != hash) {
            plan.changed.push_back(name);
        } else {
            plan.unchanged.push_back(name);
        }
    }
    for (const auto& [name, hash] : old_hashes) {
        if (!new_hashes.count(name)) plan.removed.push_back(name);
    }
    return plan;
}

ProvenanceCheck check_manifest(const std::string& manifest_path,
                               const campaign::CampaignSpec& spec) {
    ProvenanceCheck check;
    obs::Manifest stored;
    try {
        stored = obs::load_manifest(manifest_path);
    } catch (const std::exception& e) {
        check.ok = false;
        check.notes.push_back(std::string("manifest unreadable: ") + e.what());
        return check;
    }
    obs::Manifest expected;
    expected.config = util::JsonValue::parse(spec.to_json()).as_object();
    if (stored.config_hash() != expected.config_hash()) {
        check.ok = false;
        check.notes.push_back("config hash " + stored.config_hash() +
                              " differs from the spec's " + expected.config_hash() +
                              "; cached matrices are stale, full re-run required");
    }
    return check;
}

ProvenanceCheck check_subset_cache(const std::string& path) {
    ProvenanceCheck check;
    const analysis::Report report = analysis::lint_subset_cache_file(path);
    for (const analysis::Finding& f : report.findings()) {
        check.ok = false;
        check.notes.push_back(f.rule + " " + f.object + ": " + f.message);
    }
    return check;
}

campaign::CampaignSpec to_campaign_spec(const DeltaPlan& plan,
                                        campaign::CampaignSpec base) {
    base.module_filter = plan.stale_modules();
    if (base.module_filter.empty()) {
        // Nothing stale: clearing the case list makes the spec
        // non-executable, so nobody can accidentally spend injection
        // runs on a campaign with nothing to measure.
        base.case_ids.clear();
    }
    base.name += "-delta";
    return base;
}

epic::PermeabilityMatrix splice_matrix(const model::SystemModel& new_system,
                                       const epic::PermeabilityMatrix& cached,
                                       const epic::PermeabilityMatrix& fresh,
                                       const DeltaPlan& plan) {
    const std::vector<std::string> stale = plan.stale_modules();
    const auto is_stale = [&stale](const std::string& name) {
        return std::binary_search(stale.begin(), stale.end(), name);
    };

    epic::PermeabilityMatrix merged(new_system);
    for (model::ModuleId m : new_system.all_modules()) {
        const std::string& name = new_system.module_name(m);
        const epic::PermeabilityMatrix& source = is_stale(name) ? fresh : cached;
        const model::SystemModel& source_system = source.system();
        const auto source_id = source_system.find_module(name);
        if (!source_id) {
            throw std::invalid_argument("splice_matrix: module '" + name +
                                        "' missing from the " +
                                        (is_stale(name) ? "fresh" : "cached") +
                                        " matrix");
        }
        const model::ModuleSpec& spec = new_system.module(m);
        const model::ModuleSpec& source_spec = source_system.module(*source_id);
        if (source_spec.input_count() != spec.input_count() ||
            source_spec.output_count() != spec.output_count()) {
            throw std::invalid_argument("splice_matrix: module '" + name +
                                        "' has a different port shape in the " +
                                        (is_stale(name) ? "fresh" : "cached") +
                                        " matrix");
        }
        for (std::uint32_t i = 0; i < spec.input_count(); ++i) {
            for (std::uint32_t k = 0; k < spec.output_count(); ++k) {
                const util::Proportion counts = source.counts(*source_id, i, k);
                if (counts.trials > 0) {
                    merged.set_counts(m, i, k, counts.hits, counts.trials);
                } else {
                    merged.set(m, i, k, source.get(*source_id, i, k));
                }
            }
        }
    }
    return merged;
}

}  // namespace epea::analytic
