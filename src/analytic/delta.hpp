// Delta-campaign planner (DESIGN.md §12): given an edited model, decide
// which modules' permeability rows are still valid and emit a minimal
// CampaignSpec that re-injects only the modules whose I/O context
// changed. Fresh rows are spliced with cached ones into a merged matrix
// that is byte-identical to a from-scratch run — the estimator draws its
// per-(module,port,bit) injection times from the shared per-case stream
// even for modules it skips, so a filtered run reproduces exactly the
// ticks a full run would have used for the re-measured modules.
#pragma once

#include <string>
#include <vector>

#include "campaign/spec.hpp"
#include "epic/matrix.hpp"
#include "model/system_model.hpp"
#include "util/json.hpp"

namespace epea::analytic {

/// Module-level diff of two system models, computed from the per-module
/// context hashes (analytic::module_context_hash).
struct DeltaPlan {
    std::vector<std::string> unchanged;  ///< context hash equal in both
    std::vector<std::string> changed;    ///< present in both, context differs
    std::vector<std::string> added;      ///< only in the new model
    std::vector<std::string> removed;    ///< only in the old model

    /// True when no module needs re-measurement (removed modules cost
    /// nothing — their rows are simply dropped at splice time).
    [[nodiscard]] bool empty() const noexcept {
        return changed.empty() && added.empty();
    }
    /// Modules the re-injection campaign must cover (changed + added).
    [[nodiscard]] std::vector<std::string> stale_modules() const;

    [[nodiscard]] util::JsonValue to_json() const;
};

/// Diffs `old_model` → `new_model` by module name and context hash.
[[nodiscard]] DeltaPlan diff_models(const model::SystemModel& old_model,
                                    const model::SystemModel& new_model);

/// Result of a provenance check on the planner's cache inputs.
struct ProvenanceCheck {
    bool ok = true;
    std::vector<std::string> notes;  ///< reasons when !ok (or informational)
};

/// Compares a run manifest's config hash against the serialized config of
/// `spec`. A mismatch means the cached matrices were produced under a
/// different campaign configuration and the whole cache is stale — the
/// planner must fall back to a full re-run, not a delta.
[[nodiscard]] ProvenanceCheck check_manifest(const std::string& manifest_path,
                                             const campaign::CampaignSpec& spec);

/// Validates subset_cache.json through the analysis lint (EPEA-W061)
/// before the planner treats its entries as reusable ground truth.
[[nodiscard]] ProvenanceCheck check_subset_cache(const std::string& path);

/// Minimal re-injection campaign for `plan`: `base` with module_filter
/// set to the stale modules. An empty plan yields a spec with no test
/// cases at all — the executor refuses to run such a spec (and the
/// campaign lint flags it), which is the point: nothing needs
/// re-measuring, so splice the cached matrix directly.
[[nodiscard]] campaign::CampaignSpec to_campaign_spec(const DeltaPlan& plan,
                                                      campaign::CampaignSpec base);

/// Splices a merged matrix on `new_system`: rows of stale modules come
/// from `fresh`, all other rows are carried over from `cached` (matched
/// by module name and port indices; removed modules vanish, since the
/// new system has no rows for them). With an empty plan the result is a
/// field-exact copy of `cached` restricted to the new system — CSV
/// serialization is byte-identical.
[[nodiscard]] epic::PermeabilityMatrix splice_matrix(
    const model::SystemModel& new_system, const epic::PermeabilityMatrix& cached,
    const epic::PermeabilityMatrix& fresh, const DeltaPlan& plan);

}  // namespace epea::analytic
