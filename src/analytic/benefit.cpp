#include "analytic/benefit.hpp"

#include "exp/arrestment_experiments.hpp"
#include "opt/cost.hpp"

namespace epea::analytic {

std::vector<std::vector<double>> detection_matrix(
    const Engine& engine, opt::ErrorModel model,
    const std::vector<model::SignalId>& candidates) {
    const model::SystemModel& system = engine.system();
    const std::vector<model::SignalId> sites =
        model == opt::ErrorModel::kInput
            ? system.signals_with_role(model::SignalRole::kSystemInput)
            : system.all_signals();
    std::vector<std::vector<double>> detect;
    detect.reserve(sites.size());
    for (const model::SignalId site : sites) {
        std::vector<double>& row = detect.emplace_back();
        row.reserve(candidates.size());
        for (const model::SignalId cand : candidates) {
            row.push_back(engine.permeability(site, cand).point);
        }
    }
    return detect;
}

opt::PlacementOptimizer make_engine_optimizer(
    const epic::PermeabilityMatrix& pm, opt::ErrorModel model,
    const std::vector<model::SignalId>& candidates, const EngineOptions& options) {
    const model::SystemModel& system = pm.system();
    const opt::CostModel costs = opt::CostModel::from_signal_kinds(system, candidates);
    std::vector<model::SignalId> costed;
    for (const model::SignalId id : candidates) {
        if (costs.has(system.signal_name(id))) costed.push_back(id);
    }
    Engine engine(pm, options);
    return opt::PlacementOptimizer::with_detection(
        system, costed, detection_matrix(engine, model, costed));
}

opt::PlacementOptimizer make_engine_optimizer(const epic::PermeabilityMatrix& pm,
                                              opt::ErrorModel model,
                                              const EngineOptions& options) {
    std::vector<model::SignalId> ids;
    for (const auto& [ea_name, signal_name] : exp::arrestment_ea_signals()) {
        ids.push_back(pm.system().signal_id(signal_name));
    }
    return make_engine_optimizer(pm, model, ids, options);
}

}  // namespace epea::analytic
