// Engine-backed placement benefits: the third benefit mode of
// `place optimize`, between opt's visibility heuristic (simple-path
// enumeration) and campaign ground truth. The engine's fixpoint reach —
// which, unlike path enumeration, accounts for feedback walks — fills
// the detection matrix D[site][candidate], and opt's machinery does the
// rest through PlacementOptimizer::with_detection.
#pragma once

#include <vector>

#include "analytic/engine.hpp"
#include "opt/optimizer.hpp"

namespace epea::analytic {

/// D[site][candidate] = engine reach of an error born at the site when
/// observed at the candidate. Sites follow the error model (input:
/// system inputs; severe: every signal), matching opt::AnalyticBenefit.
[[nodiscard]] std::vector<std::vector<double>> detection_matrix(
    const Engine& engine, opt::ErrorModel model,
    const std::vector<model::SignalId>& candidates);

/// Optimizer over an explicit candidate list. Boolean candidates are
/// dropped (no boolean EA exists), mirroring PlacementOptimizer::analytic.
[[nodiscard]] opt::PlacementOptimizer make_engine_optimizer(
    const epic::PermeabilityMatrix& pm, opt::ErrorModel model,
    const std::vector<model::SignalId>& candidates,
    const EngineOptions& options = {});

/// Optimizer over the arrestment target's EA-carrying signals.
[[nodiscard]] opt::PlacementOptimizer make_engine_optimizer(
    const epic::PermeabilityMatrix& pm, opt::ErrorModel model,
    const EngineOptions& options = {});

}  // namespace epea::analytic
