// Validation of the analytic engine (DESIGN.md §12): where does
// composed propagation agree with exhaustive path enumeration, and where
// does either agree with campaign ground truth?
//
// Three prongs, one JSON report (the CI `analytic-parity` artifact):
//  1. enumeration_check — engine fixpoint vs the exact path-enumeration
//     measures (opt::visibility per source/observer pair and
//     epic::signal_exposure per signal) on a given matrix. On the paper's
//     Table-1 matrix this is the Table-1/2 agreement gate.
//  2. campaign_check — on a *measured* arrestment matrix, compare the
//     engine's composed input→output permeability against directly
//     measured end-to-end deviation rates (first golden-run difference at
//     the system output) from the same injection budget.
//  3. synth_sweep — a seeded corpus of src/synth graphs, acyclic and
//     cyclic, mapping out where composition breaks down (reconvergent
//     fan-in and feedback walks are exactly where fixpoint and simple-
//     path enumeration part ways).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analytic/engine.hpp"
#include "exp/arrestment_experiments.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"

namespace epea::analytic {

/// Worst source/observer disagreement of an enumeration check.
struct PairDeviation {
    std::string source;
    std::string observer;
    double analytic = 0.0;
    double reference = 0.0;
};

struct EnumerationCheck {
    std::size_t pairs = 0;
    double max_abs_diff = 0.0;
    double mean_abs_diff = 0.0;
    /// Engine exposure vs epic::signal_exposure (must agree to float
    /// noise — both are the same direct sum).
    double exposure_max_abs_diff = 0.0;
    PairDeviation worst;
    bool all_converged = true;

    [[nodiscard]] util::JsonValue to_json() const;
};

/// Engine (fixpoint) vs exact path enumeration on every ordered signal
/// pair of `pm`'s system.
[[nodiscard]] EnumerationCheck enumeration_check(const epic::PermeabilityMatrix& pm,
                                                 const EngineOptions& engine = {});

/// Structural exactness: the engine's composed permeability is positive
/// exactly when the §16 prover finds a positive-permeability path in the
/// signal graph. Any mismatch means the two reachability semantics have
/// drifted apart (prover edge rule vs engine cell bound).
struct ExactnessCheck {
    std::size_t pairs = 0;
    std::size_t mismatches = 0;
    /// First mismatching pair (reference is 1.0 when the prover finds a
    /// path the engine calls unreachable, 0.0 for the converse).
    PairDeviation worst;

    [[nodiscard]] util::JsonValue to_json() const;
};

/// Engine reach positivity vs prover path-existence on every ordered
/// signal pair of `pm`'s system.
[[nodiscard]] ExactnessCheck exactness_check(const epic::PermeabilityMatrix& pm,
                                             const EngineOptions& engine = {});

/// Fills every structural input/output pair of `system` with permeability
/// `p` — the hand-written-target harness for exactness_check on models
/// that ship without a measured matrix (the tank).
[[nodiscard]] epic::PermeabilityMatrix uniform_matrix(const model::SystemModel& system,
                                                      double p);

/// One (system input, system output) row of the campaign prong.
struct CampaignRow {
    std::string input;
    std::string output;
    util::Proportion measured;  ///< end-to-end deviation rate (Wilson CI)
    Bound analytic;             ///< engine prediction from the measured matrix
    [[nodiscard]] double abs_diff() const noexcept {
        return measured.point > analytic.point ? measured.point - analytic.point
                                               : analytic.point - measured.point;
    }
};

struct CampaignCheck {
    std::vector<CampaignRow> rows;
    double max_abs_diff = 0.0;
    std::uint64_t runs = 0;  ///< injection runs spent on the end-to-end side

    [[nodiscard]] util::JsonValue to_json() const;
};

/// Estimates the arrestment matrix with `options`, then measures
/// end-to-end input→output deviation rates with the same sizing and
/// compares them against the engine's composed prediction.
[[nodiscard]] CampaignCheck campaign_check(const exp::CampaignOptions& options,
                                           const EngineOptions& engine = {});

struct SynthSweep {
    std::size_t graphs = 0;
    std::size_t cyclic_graphs = 0;
    double max_abs_diff_acyclic = 0.0;
    double max_abs_diff_cyclic = 0.0;
    bool all_converged = true;
    /// Engine-vs-prover reachability mismatches across the corpus; gated
    /// to zero (positivity must agree even where magnitudes diverge).
    std::size_t exactness_mismatches = 0;

    [[nodiscard]] util::JsonValue to_json() const;
};

/// Runs enumeration checks over `graphs` seeded synth systems (half of
/// them rewired with cycle_density 0.25).
[[nodiscard]] SynthSweep synth_sweep(std::size_t graphs, std::uint64_t seed,
                                     const EngineOptions& engine = {});

struct ValidateOptions {
    exp::CampaignOptions campaign = exp::CampaignOptions::from_env();
    EngineOptions engine;
    /// Committed tolerances (see DESIGN.md §12): the CI analytic-parity
    /// job fails when a prong exceeds its bound. Calibrated against the
    /// arrestment target: the Table-1 enumeration prong measures 4.1e-5
    /// (the ≥2-length cycle treatment vs exact simple paths), the full
    /// 25x10 campaign prong 0.091 (composition underestimates PACNT→TOC2
    /// because reconvergent paths through CALC are not independent).
    double enumeration_tolerance = 0.001;
    double campaign_tolerance = 0.15;
    std::size_t synth_graphs = 6;
    std::uint64_t synth_seed = 42;
    bool run_campaign = true;  ///< the expensive prong; CLI --no-campaign
    bool run_synth = true;
};

struct ValidateResult {
    bool pass = true;
    util::JsonValue report;  ///< full comparison JSON (the CI artifact)
};

/// Runs all requested prongs on the arrestment target (prong 1 uses the
/// paper's Table-1 matrix, so Table-2 agreement is checked even when the
/// campaign prong is skipped).
[[nodiscard]] ValidateResult validate_arrestment(const ValidateOptions& options);

}  // namespace epea::analytic
