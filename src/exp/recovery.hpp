// Recovery experiment (extension beyond the paper's evaluation): under
// the severe error model, how much does placing ERMs — recovery wrappers
// — at the selected locations reduce the system failure rate?
//
// Each memory location is injected twice with identical flips: once
// detection-only (baseline) and once with the recovery wrappers armed.
#pragma once

#include <string>
#include <vector>

#include "ea/assertion.hpp"
#include "erm/wrapper.hpp"
#include "exp/arrestment_experiments.hpp"

namespace epea::exp {

struct RecoveryResult {
    std::uint64_t runs = 0;               ///< injected locations x cases
    std::uint64_t failures_baseline = 0;  ///< §4.2 failures without ERMs
    std::uint64_t failures_with_erm = 0;  ///< failures with ERMs armed
    std::uint64_t repairs = 0;            ///< total repair actions
    ea::EaCost erm_cost;                  ///< ROM/RAM of the armed wrappers

    [[nodiscard]] double baseline_failure_rate() const noexcept {
        return runs ? static_cast<double>(failures_baseline) /
                          static_cast<double>(runs)
                    : 0.0;
    }
    [[nodiscard]] double erm_failure_rate() const noexcept {
        return runs ? static_cast<double>(failures_with_erm) /
                          static_cast<double>(runs)
                    : 0.0;
    }
};

/// Runs the paired severe-model experiment with recovery wrappers on the
/// named signals (e.g. the extended-placement selection).
[[nodiscard]] RecoveryResult recovery_experiment(
    target::ArrestmentSystem& sys, const CampaignOptions& options,
    const std::vector<std::string>& guarded_signals,
    erm::RecoveryPolicy policy = erm::RecoveryPolicy::kClamp);

}  // namespace epea::exp
