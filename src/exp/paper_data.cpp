#include "exp/paper_data.hpp"

namespace epea::exp {

const std::vector<PaperPair>& paper_table1() {
    static const std::vector<PaperPair> kTable1 = {
        {"CLOCK", "i", "ms_slot_nbr", 1.000},
        {"CLOCK", "i", "mscnt", 0.000},
        {"DIST_S", "PACNT", "pulscnt", 0.957},
        {"DIST_S", "TIC1", "pulscnt", 0.000},
        {"DIST_S", "TCNT", "pulscnt", 0.000},
        {"DIST_S", "PACNT", "slow_speed", 0.010},
        {"DIST_S", "TIC1", "slow_speed", 0.000},
        {"DIST_S", "TCNT", "slow_speed", 0.000},
        {"DIST_S", "PACNT", "stopped", 0.000},
        {"DIST_S", "TIC1", "stopped", 0.000},
        {"DIST_S", "TCNT", "stopped", 0.000},
        {"PRES_S", "ADC", "IsValue", 0.000},
        {"CALC", "i", "i", 1.000},
        {"CALC", "mscnt", "i", 0.000},
        {"CALC", "pulscnt", "i", 0.494},
        {"CALC", "slow_speed", "i", 0.000},
        {"CALC", "stopped", "i", 0.013},
        {"CALC", "i", "SetValue", 0.056},
        {"CALC", "mscnt", "SetValue", 0.530},
        {"CALC", "pulscnt", "SetValue", 0.000},
        {"CALC", "slow_speed", "SetValue", 0.892},
        {"CALC", "stopped", "SetValue", 0.000},
        {"V_REG", "SetValue", "OutValue", 0.885},
        {"V_REG", "IsValue", "OutValue", 0.896},
        {"PRES_A", "OutValue", "TOC2", 0.875},
    };
    return kTable1;
}

epic::PermeabilityMatrix paper_matrix(const model::SystemModel& system) {
    epic::PermeabilityMatrix pm(system);
    for (const auto& p : paper_table1()) {
        pm.set(p.module, p.in_signal, p.out_signal, p.value);
    }
    return pm;
}

const std::vector<std::pair<std::string, double>>& paper_exposures() {
    static const std::vector<std::pair<std::string, double>> kTable2 = {
        {"OutValue", 1.781}, {"i", 1.507},       {"SetValue", 1.478},
        {"ms_slot_nbr", 1.000}, {"pulscnt", 0.957}, {"TOC2", 0.875},
        {"slow_speed", 0.010},  {"IsValue", 0.000}, {"mscnt", 0.000},
        {"stopped", 0.000},
    };
    return kTable2;
}

const std::vector<std::pair<std::string, double>>& paper_impacts() {
    static const std::vector<std::pair<std::string, double>> kTable5 = {
        {"PACNT", 0.027},  {"TCNT", 0.000},       {"TIC1", 0.000},
        {"ADC", 0.000},    {"OutValue", 0.875},   {"i", 0.043},
        {"SetValue", 0.774}, {"ms_slot_nbr", 0.000}, {"pulscnt", 0.021},
        {"slow_speed", 0.691}, {"IsValue", 0.784}, {"mscnt", 0.410},
        {"stopped", 0.001},
    };
    return kTable5;
}

const std::vector<std::string>& paper_eh_signals() {
    static const std::vector<std::string> kEh = {
        "SetValue", "IsValue", "i", "pulscnt", "ms_slot_nbr", "mscnt", "OutValue"};
    return kEh;
}

const std::vector<std::string>& paper_pa_signals() {
    static const std::vector<std::string> kPa = {"SetValue", "i", "pulscnt", "OutValue"};
    return kPa;
}

const std::vector<PaperCoverageRow>& paper_table4() {
    static const std::vector<PaperCoverageRow> kTable4 = {
        {"PACNT", 1856, 0.975},
        {"TIC1", 3712, 0.0},
        {"TCNT", 3712, 0.0},
        {"All", 9280, 0.195},
    };
    return kTable4;
}

}  // namespace epea::exp
