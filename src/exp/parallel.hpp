// Parallel campaign runner — splits the Table-1 permeability campaign
// across worker threads, one fully-independent simulator per worker, and
// merges the per-pair counts. Per-case injection streams are keyed by the
// global case index, so the merged matrix is bit-identical to the
// sequential estimate regardless of the thread count.
#pragma once

#include "epic/matrix.hpp"
#include "exp/arrestment_experiments.hpp"

namespace epea::exp {

/// Like estimate_arrestment_permeability, but distributed over
/// `threads` workers (0 = one per hardware thread, capped by the case
/// count). Throws whatever a worker throws.
[[nodiscard]] epic::PermeabilityMatrix estimate_arrestment_permeability_parallel(
    const CampaignOptions& options, unsigned threads = 0);

}  // namespace epea::exp
