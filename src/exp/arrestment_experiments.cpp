#include "exp/arrestment_experiments.hpp"

#include <algorithm>
#include <cstdlib>

#include "ea/calibrate.hpp"
#include "fi/batch.hpp"
#include "fi/fastpath.hpp"
#include "fi/golden.hpp"
#include "fi/injector.hpp"
#include "obs/trace.hpp"

namespace epea::exp {

namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
    if (const char* raw = std::getenv(name)) {
        const long v = std::strtol(raw, nullptr, 10);
        if (v > 0) return static_cast<std::size_t>(v);
    }
    return fallback;
}

/// Bare (trace-only) golden run for case `c` from the shared cache — the
/// capture every driver used to repeat per experiment, hoisted into one
/// cached entry. Monitors never alter signals, so the fault-free trace is
/// context-free and shareable across drivers.
std::shared_ptr<const fi::GoldenCaseData> cached_bare_golden(
    fi::GoldenCache& cache, target::ArrestmentSystem& sys, std::size_t c,
    runtime::Tick max_ticks, fi::FastPathStats& stats) {
    return cache.get_or_capture(
        fi::golden_key("trace", c),
        [&] { return fi::capture_golden_data(sys.sim(), max_ticks, false); }, &stats);
}

}  // namespace

CampaignOptions CampaignOptions::from_env() {
    CampaignOptions o;
    o.case_count = std::min<std::size_t>(env_size("EPEA_CASES", o.case_count), 25);
    o.times_per_bit = env_size("EPEA_TIMES", o.times_per_bit);
    return o;
}

const std::vector<std::pair<std::string, std::string>>& arrestment_ea_signals() {
    static const std::vector<std::pair<std::string, std::string>> kPairs = {
        {"EA1", "SetValue"}, {"EA2", "IsValue"}, {"EA3", "i"},
        {"EA4", "pulscnt"},  {"EA5", "ms_slot_nbr"}, {"EA6", "mscnt"},
        {"EA7", "OutValue"},
    };
    return kPairs;
}

ea::EaBank make_calibrated_bank(const model::SystemModel& system,
                                const std::vector<runtime::Trace>& golden,
                                const ea::CalibrationMargins& margins) {
    ea::EaCalibrator cal(system);
    for (const auto& trace : golden) cal.add_trace(trace, margins.settle_fraction);
    ea::EaBank bank;
    for (const auto& [ea_name, signal_name] : arrestment_ea_signals()) {
        const model::SignalId sid = system.signal_id(signal_name);
        bank.add(ea_name, sid, cal.calibrate(sid, margins));
    }
    return bank;
}

void recalibrate_bank(ea::EaBank& bank, const model::SystemModel& system,
                      const runtime::Trace& golden,
                      const ea::CalibrationMargins& margins) {
    ea::EaCalibrator cal(system);
    cal.add_trace(golden, margins.settle_fraction);
    for (std::size_t i = 0; i < bank.size(); ++i) {
        bank.at(i).set_params(cal.calibrate(bank.at(i).signal(), margins));
    }
}

epic::PermeabilityMatrix estimate_arrestment_permeability(
    target::ArrestmentSystem& sys, const CampaignOptions& options,
    const epic::EstimatorProgress& progress) {
    obs::Span span("exp.permeability");
    const auto cases = target::standard_test_cases();
    const std::size_t case_count = std::min(
        options.case_count, cases.size() - std::min(options.case_first, cases.size()));

    fi::Injector injector(sys.sim());
    epic::PermeabilityEstimator estimator(sys.sim(), injector);
    epic::EstimatorOptions eopt;
    eopt.times_per_bit = options.times_per_bit;
    eopt.max_ticks = options.max_ticks;
    eopt.seed = options.seed;
    eopt.case_index_offset = options.case_first;
    eopt.use_fastpath = options.use_fastpath;
    eopt.use_batch = options.use_batch;
    eopt.batch_width = options.batch_width;
    eopt.golden_cache = options.golden_cache;
    eopt.module_filter = options.module_filter;
    epic::PermeabilityMatrix pm = estimator.estimate(
        case_count,
        [&](std::size_t c) { sys.configure(cases[options.case_first + c]); }, eopt,
        progress);
    if (options.fastpath_out) options.fastpath_out->merge(estimator.fastpath_stats());
    return pm;
}

InputCoverageResult input_coverage_experiment(target::ArrestmentSystem& sys,
                                              const InputCoverageOptions& options,
                                              const std::vector<SubsetSpec>& subsets) {
    obs::Span span("exp.input");
    const auto& system = sys.system();
    const auto cases = target::standard_test_cases();
    const std::size_t case_first = std::min(options.campaign.case_first, cases.size());
    const std::size_t case_count =
        std::min(options.campaign.case_count, cases.size() - case_first);

    sys.sim().clear_monitors();
    fi::Injector injector(sys.sim());

    // Bank built once; parameters recalibrated per test case.
    InputCoverageResult result;
    for (const auto& [ea_name, _] : arrestment_ea_signals()) {
        result.ea_names.push_back(ea_name);
    }
    for (const auto& s : subsets) result.subset_names.push_back(s.name);

    auto make_row = [&](const std::string& name) {
        InputCoverageRow row;
        row.signal = name;
        row.detected_per_ea.assign(result.ea_names.size(), 0);
        row.detected_per_subset.assign(subsets.size(), 0);
        return row;
    };
    for (const auto& name : options.target_signals) result.rows.push_back(make_row(name));
    result.all = make_row("All");

    // Subset membership as bank indices (resolved after bank exists).
    ea::EaBank bank;
    std::vector<std::vector<std::size_t>> subset_indices;

    fi::GoldenCache local_cache;
    fi::GoldenCache& cache =
        options.campaign.golden_cache ? *options.campaign.golden_cache : local_cache;
    fi::FastPathStats stats;
    fi::InjectionRunner runner(sys.sim(), injector);
    runner.set_enabled(options.campaign.use_fastpath);
    fi::BatchRunner batchrun(sys.sim());
    batchrun.set_mode(fi::BatchRunner::Mode::kCoverage);
    batchrun.set_width(options.campaign.batch_width);

    // Batched path bookkeeping: outcomes are tallied in submission order,
    // reproducing the scalar accumulation order bit-for-bit (the latency
    // stats are running sums, so order matters).
    struct Tally {
        std::size_t row = 0;
        runtime::Tick t = 0;
        std::size_t ticket = 0;
    };
    std::vector<Tally> tallies;

    for (std::size_t c = case_first; c < case_first + case_count; ++c) {
        // Injection-time stream keyed by the *global* case index (like the
        // severe/recovery campaigns): any case window reproduces the same
        // per-case injection moments as the full sequential campaign, which
        // is what lets the sharded campaign executor split this experiment.
        util::Rng time_rng(0xc0ffeeULL + static_cast<std::uint64_t>(c) * 0x9e3779b9ULL);
        sys.configure(cases[c]);
        injector.disarm();
        const auto bare =
            cached_bare_golden(cache, sys, c, options.campaign.max_ticks, stats);
        const fi::GoldenRun& gr = bare->run;

        if (c == case_first) {
            std::vector<runtime::Trace> traces{gr.trace};
            bank = make_calibrated_bank(system, traces, options.campaign.ea_margins);
            bank.arm(sys.sim());
            for (const auto& s : subsets) {
                std::vector<std::size_t> idx;
                for (const auto& n : s.ea_names) idx.push_back(bank.index_of(n));
                subset_indices.push_back(std::move(idx));
            }
        } else {
            recalibrate_bank(bank, system, gr.trace, options.campaign.ea_margins);
        }

        // Snapshot golden for forking/pruning, captured under the armed,
        // freshly calibrated bank — monitor state is part of the snapshot,
        // so the capture context must match the injection runs exactly.
        std::shared_ptr<const fi::GoldenCaseData> full;
        if (runner.enabled() && sys.sim().snapshot_supported()) {
            full = cache.get_or_capture(
                fi::golden_key("input", c),
                [&] {
                    return fi::capture_golden_data(sys.sim(), options.campaign.max_ticks,
                                                   true);
                },
                &stats);
        }
        runner.set_golden(full);
        batchrun.set_golden(full);
        const bool batched = options.campaign.use_batch && full != nullptr &&
                             batchrun.ready(options.campaign.max_ticks);
        batchrun.clear();
        tallies.clear();

        // Injection moments deliberately overshoot the golden-run length
        // slightly so a realistic share of injections lands after the
        // arrestment completes and counts as inactive (cf. Table 4's
        // n_err < injected).
        const auto window_end =
            static_cast<runtime::Tick>(static_cast<std::uint64_t>(gr.length) * 108 / 100);

        for (std::size_t r = 0; r < options.target_signals.size(); ++r) {
            const model::SignalId sid = system.signal_id(options.target_signals[r]);
            const unsigned width = system.signal(sid).width;
            for (unsigned bit = 0; bit < width; ++bit) {
                const auto ticks = fi::spread_ticks(
                    0, window_end, options.campaign.times_per_bit, &time_rng);
                for (const runtime::Tick t : ticks) {
                    if (batched) {
                        tallies.push_back(
                            {r, t,
                             batchrun.submit(fi::Injection::into_signal(sid, bit, t))});
                        continue;
                    }
                    runner.run({fi::Injection::into_signal(sid, bit, t)},
                               options.campaign.max_ticks);

                    auto& row = result.rows[r];
                    ++row.injected;
                    ++result.all.injected;
                    if (injector.fired_count() == 0) continue;  // inactive
                    ++row.active;
                    ++result.all.active;

                    bool any = false;
                    runtime::Tick earliest = runtime::kInvalidTick;
                    for (std::size_t e = 0; e < bank.size(); ++e) {
                        if (!bank.at(e).triggered()) continue;
                        ++row.detected_per_ea[e];
                        ++result.all.detected_per_ea[e];
                        earliest = std::min(earliest, bank.at(e).first_detection());
                        any = true;
                    }
                    if (any) {
                        ++row.detected_any;
                        ++result.all.detected_any;
                        if (earliest >= t) {
                            const auto lat = static_cast<double>(earliest - t);
                            row.latency.add(lat);
                            result.all.latency.add(lat);
                        }
                    }
                    for (std::size_t s = 0; s < subsets.size(); ++s) {
                        if (bank.any_triggered(subset_indices[s])) {
                            ++row.detected_per_subset[s];
                            ++result.all.detected_per_subset[s];
                        }
                    }
                }
            }
        }

        if (batched) {
            batchrun.flush();
            for (const Tally& tl : tallies) {
                const fi::BatchOutcome& oc = batchrun.outcome(tl.ticket);
                auto& row = result.rows[tl.row];
                ++row.injected;
                ++result.all.injected;
                if (!oc.fired) continue;  // inactive
                ++row.active;
                ++result.all.active;

                // Rehydrate the bank's detection state from the lane's
                // monitor words (the sim's monitor order IS the bank's arm
                // order); the scalar queries below then apply unchanged.
                runtime::StateReader monitors(oc.monitors);
                for (std::size_t e = 0; e < bank.size(); ++e) {
                    bank.at(e).restore_state(monitors);
                }

                bool any = false;
                runtime::Tick earliest = runtime::kInvalidTick;
                for (std::size_t e = 0; e < bank.size(); ++e) {
                    if (!bank.at(e).triggered()) continue;
                    ++row.detected_per_ea[e];
                    ++result.all.detected_per_ea[e];
                    earliest = std::min(earliest, bank.at(e).first_detection());
                    any = true;
                }
                if (any) {
                    ++row.detected_any;
                    ++result.all.detected_any;
                    if (earliest >= tl.t) {
                        const auto lat = static_cast<double>(earliest - tl.t);
                        row.latency.add(lat);
                        result.all.latency.add(lat);
                    }
                }
                for (std::size_t s = 0; s < subsets.size(); ++s) {
                    if (bank.any_triggered(subset_indices[s])) {
                        ++row.detected_per_subset[s];
                        ++result.all.detected_per_subset[s];
                    }
                }
            }
        }
    }
    sys.sim().clear_monitors();
    stats.merge(runner.stats());
    stats.merge(batchrun.stats());
    if (options.campaign.fastpath_out) options.campaign.fastpath_out->merge(stats);
    return result;
}

SevereCoverageResult severe_coverage_experiment(target::ArrestmentSystem& sys,
                                                const CampaignOptions& options,
                                                const std::vector<SubsetSpec>& subsets) {
    obs::Span span("exp.severe");
    const auto& system = sys.system();
    const auto cases = target::standard_test_cases();
    const std::size_t case_first = std::min(options.case_first, cases.size());
    const std::size_t case_count =
        std::min(options.case_count, cases.size() - case_first);

    sys.sim().clear_monitors();
    fi::Injector injector(sys.sim());

    SevereCoverageResult result;
    result.ram_locations = sys.sim().memory().byte_count(runtime::Region::kRam);
    result.stack_locations = sys.sim().memory().byte_count(runtime::Region::kStack);
    for (const auto& s : subsets) {
        result.sets.push_back(SevereSetResult{s.name, {}});
    }

    ea::EaBank bank;
    std::vector<std::vector<std::size_t>> subset_indices;

    const std::size_t word_count = sys.sim().memory().word_count();

    fi::GoldenCache local_cache;
    fi::GoldenCache& cache =
        options.golden_cache ? *options.golden_cache : local_cache;
    fi::FastPathStats stats;
    fi::InjectionRunner runner(sys.sim(), injector);
    runner.set_enabled(options.use_fastpath);
    // Periodic plans re-perturb the state every `severe_period` ticks, so
    // convergence pruning is unsound and forking to tick 10 saves almost
    // nothing against the cost of capturing boundary snapshots: the severe
    // model stays on the slow path (DESIGN.md §9), but the golden trace for
    // EA calibration still comes from the shared cache.
    runner.set_golden(nullptr);

    for (std::size_t c = case_first; c < case_first + case_count; ++c) {
        // Injection streams keyed by the global case index: running any
        // case window reproduces the flips of the full sequential campaign.
        std::uint64_t seed = 0x5e7e8eULL + static_cast<std::uint64_t>(c) * word_count;
        sys.configure(cases[c]);
        injector.disarm();
        const auto bare = cached_bare_golden(cache, sys, c, options.max_ticks, stats);
        const fi::GoldenRun& gr = bare->run;
        sys.sim().enable_trace(false);  // severe runs need no traces

        if (c == case_first) {
            std::vector<runtime::Trace> traces{gr.trace};
            bank = make_calibrated_bank(system, traces, options.ea_margins);
            bank.arm(sys.sim());
            for (const auto& s : subsets) {
                std::vector<std::size_t> idx;
                for (const auto& n : s.ea_names) idx.push_back(bank.index_of(n));
                subset_indices.push_back(std::move(idx));
            }
        } else {
            recalibrate_bank(bank, system, gr.trace, options.ea_margins);
        }

        for (std::size_t w = 0; w < word_count; ++w) {
            const runtime::Region region = sys.sim().memory().word(w).region;
            const std::size_t region_idx = region == runtime::Region::kRam ? 0 : 1;

            runner.run({fi::Injection::into_memory(w, fi::kRandomBit, /*at=*/10,
                                                   options.severe_period)},
                       options.max_ticks, ++seed);
            ++result.runs;

            const bool failed = sys.plant().failure_report().failed();
            if (failed) ++result.failures;
            const std::size_t class_idx = failed ? 1 : 2;

            for (std::size_t s = 0; s < subsets.size(); ++s) {
                const bool det = bank.any_triggered(subset_indices[s]);
                auto& set = result.sets[s];
                for (const std::size_t region_slot : {region_idx, std::size_t{2}}) {
                    for (const std::size_t class_slot : {std::size_t{0}, class_idx}) {
                        auto& cell = set.cells[region_slot][class_slot];
                        ++cell.n;
                        if (det) ++cell.detected;
                    }
                }
            }
        }
    }
    sys.sim().enable_trace(true);
    sys.sim().clear_monitors();
    stats.merge(runner.stats());
    if (options.fastpath_out) options.fastpath_out->merge(stats);
    return result;
}

std::vector<std::string> false_positive_check(target::ArrestmentSystem& sys,
                                              const CampaignOptions& options) {
    obs::Span span("exp.false_positive");
    const auto& system = sys.system();
    const auto cases = target::standard_test_cases();
    const std::size_t case_count = std::min(options.case_count, cases.size());

    fi::GoldenCache local_cache;
    fi::GoldenCache& cache =
        options.golden_cache ? *options.golden_cache : local_cache;
    fi::FastPathStats stats;

    std::vector<std::string> fired;
    for (std::size_t c = 0; c < case_count; ++c) {
        sys.configure(cases[c]);
        sys.sim().clear_monitors();
        // The golden trace only calibrates the bank here; the fault-free
        // monitored run below IS the measurement and cannot be elided.
        const auto bare = cached_bare_golden(cache, sys, c, options.max_ticks, stats);
        std::vector<runtime::Trace> traces{bare->run.trace};
        ea::EaBank bank = make_calibrated_bank(system, traces);
        bank.arm(sys.sim());
        sys.sim().reset();
        sys.sim().run(options.max_ticks);
        for (const std::size_t idx : bank.triggered()) {
            fired.push_back("case " + std::to_string(c) + ": " + bank.at(idx).name());
        }
        sys.sim().clear_monitors();
    }
    if (options.fastpath_out) options.fastpath_out->merge(stats);
    return fired;
}

}  // namespace epea::exp
