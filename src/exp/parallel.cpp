#include "exp/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "epic/estimator.hpp"
#include "fi/injector.hpp"
#include "obs/trace.hpp"

namespace epea::exp {

epic::PermeabilityMatrix estimate_arrestment_permeability_parallel(
    const CampaignOptions& options, unsigned threads) {
    const auto cases = target::standard_test_cases();
    const std::size_t case_count = std::min(options.case_count, cases.size());
    if (threads == 0) {
        threads = std::max(1U, std::thread::hardware_concurrency());
    }
    threads = static_cast<unsigned>(
        std::min<std::size_t>(threads, std::max<std::size_t>(1, case_count)));

    // Next global case index to claim (simple work stealing).
    std::atomic<std::size_t> next_case{0};

    // Each worker produces one matrix over its claimed cases; merged at
    // the end. Matrices reference worker-local SystemModels, so workers
    // only report raw counts keyed by (module, in, out).
    struct PairCount {
        std::uint64_t affected = 0;
        std::uint64_t active = 0;
    };
    std::mutex merge_mutex;
    std::vector<PairCount> merged;
    fi::FastPathStats merged_stats;
    std::exception_ptr first_error;

    auto worker = [&]() {
        try {
            target::ArrestmentSystem sys;
            fi::Injector injector(sys.sim());
            epic::PermeabilityEstimator estimator(sys.sim(), injector);

            std::vector<PairCount> local;
            fi::FastPathStats local_stats;
            for (;;) {
                const std::size_t c = next_case.fetch_add(1);
                if (c >= case_count) break;

                epic::EstimatorOptions eopt;
                eopt.times_per_bit = options.times_per_bit;
                eopt.max_ticks = options.max_ticks;
                eopt.case_index_offset = c;  // global stream key
                eopt.use_fastpath = options.use_fastpath;
                eopt.use_batch = options.use_batch;
                eopt.batch_width = options.batch_width;
                // The GoldenCache is mutex-protected and snapshot data is
                // value-based, so a shared cache is safe across workers.
                eopt.golden_cache = options.golden_cache;
                eopt.module_filter = options.module_filter;
                const epic::PermeabilityMatrix pm = estimator.estimate(
                    1, [&](std::size_t) { sys.configure(cases[c]); }, eopt);
                local_stats.merge(estimator.fastpath_stats());

                const auto entries = pm.entries();
                if (local.empty()) local.resize(entries.size());
                for (std::size_t k = 0; k < entries.size(); ++k) {
                    const auto counts =
                        pm.counts(entries[k].module, entries[k].in_port,
                                  entries[k].out_port);
                    local[k].affected += counts.hits;
                    local[k].active += counts.trials;
                }
            }

            const std::scoped_lock lock(merge_mutex);
            if (merged.empty()) merged.resize(local.size());
            for (std::size_t k = 0; k < local.size(); ++k) {
                merged[k].affected += local[k].affected;
                merged[k].active += local[k].active;
            }
            merged_stats.merge(local_stats);
        } catch (...) {
            const std::scoped_lock lock(merge_mutex);
            if (!first_error) first_error = std::current_exception();
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
        pool.emplace_back([&worker, t] {
            obs::set_thread_name("worker-" + std::to_string(t));
            worker();
        });
    }
    for (auto& t : pool) t.join();
    if (first_error) std::rethrow_exception(first_error);
    if (options.fastpath_out) options.fastpath_out->merge(merged_stats);

    // The returned matrix must reference a SystemModel that outlives it;
    // a process-lifetime instance of the (immutable) arrestment model
    // keeps ownership simple. Construction is deterministic, so ids and
    // entry order match any other arrestment-model instance.
    static const model::SystemModel kModel = target::make_arrestment_model();
    epic::PermeabilityMatrix result(kModel);
    const auto entries = result.entries();
    for (std::size_t k = 0; k < entries.size() && k < merged.size(); ++k) {
        result.set_counts(entries[k].module, entries[k].in_port, entries[k].out_port,
                          merged[k].affected, merged[k].active);
    }
    return result;
}

}  // namespace epea::exp
