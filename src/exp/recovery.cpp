#include "exp/recovery.hpp"

#include <algorithm>

#include "ea/calibrate.hpp"
#include "fi/fastpath.hpp"
#include "fi/golden.hpp"
#include "fi/injector.hpp"
#include "obs/trace.hpp"

namespace epea::exp {

RecoveryResult recovery_experiment(target::ArrestmentSystem& sys,
                                   const CampaignOptions& options,
                                   const std::vector<std::string>& guarded_signals,
                                   erm::RecoveryPolicy policy) {
    obs::Span span("exp.recovery");
    const auto& system = sys.system();
    const auto cases = target::standard_test_cases();
    const std::size_t case_first = std::min(options.case_first, cases.size());
    const std::size_t case_count =
        std::min(options.case_count, cases.size() - case_first);

    sys.sim().clear_monitors();
    sys.sim().clear_recoverers();
    fi::Injector injector(sys.sim());

    RecoveryResult result;
    erm::ErmBank bank;
    const std::size_t word_count = sys.sim().memory().word_count();

    fi::GoldenCache local_cache;
    fi::GoldenCache& cache =
        options.golden_cache ? *options.golden_cache : local_cache;
    fi::FastPathStats stats;
    fi::InjectionRunner runner(sys.sim(), injector);
    runner.set_enabled(options.use_fastpath);
    // Like the severe model, the recovery experiment injects periodic
    // plans, so it stays on the slow path (DESIGN.md §9); only the golden
    // trace for wrapper calibration is shared through the cache.
    runner.set_golden(nullptr);

    for (std::size_t c = case_first; c < case_first + case_count; ++c) {
        // Global-case-index keying, as in severe_coverage_experiment.
        std::uint64_t seed = 0xeca4e1ULL + static_cast<std::uint64_t>(c) * word_count;
        sys.configure(cases[c]);
        injector.disarm();
        sys.sim().clear_recoverers();
        const auto bare = cache.get_or_capture(
            fi::golden_key("trace", c),
            [&] { return fi::capture_golden_data(sys.sim(), options.max_ticks, false); },
            &stats);
        const fi::GoldenRun& gr = bare->run;
        sys.sim().enable_trace(false);

        // (Re)calibrate the wrappers from this configuration's golden run.
        ea::EaCalibrator cal(system);
        cal.add_trace(gr.trace);
        if (c == case_first) {
            for (const auto& name : guarded_signals) {
                const model::SignalId sid = system.signal_id(name);
                bank.add("ERM:" + name, sid, cal.calibrate(sid), policy);
            }
            result.erm_cost = bank.total_cost();
        } else {
            for (std::size_t w = 0; w < bank.size(); ++w) {
                bank.at(w).set_params(cal.calibrate(bank.at(w).signal()));
            }
        }

        for (std::size_t w = 0; w < word_count; ++w) {
            ++seed;
            ++result.runs;

            // Baseline: identical flips, no recovery.
            sys.sim().clear_recoverers();
            runner.run({fi::Injection::into_memory(w, fi::kRandomBit, 10,
                                                   options.severe_period)},
                       options.max_ticks, seed);
            if (sys.plant().failure_report().failed()) ++result.failures_baseline;

            // With recovery wrappers armed.
            bank.arm(sys.sim());
            runner.run({fi::Injection::into_memory(w, fi::kRandomBit, 10,
                                                   options.severe_period)},
                       options.max_ticks, seed);
            if (sys.plant().failure_report().failed()) ++result.failures_with_erm;
            result.repairs += bank.total_repairs();
            sys.sim().clear_recoverers();
        }
    }
    sys.sim().enable_trace(true);
    stats.merge(runner.stats());
    if (options.fastpath_out) options.fastpath_out->merge(stats);
    return result;
}

}  // namespace epea::exp
