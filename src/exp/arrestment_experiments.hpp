// Experiment drivers for the arrestment target — one driver per paper
// artifact (see DESIGN.md §4). The bench binaries print the tables; the
// integration tests assert the reproduced shapes.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ea/bank.hpp"

#include "util/stats.hpp"
#include "ea/calibrate.hpp"
#include "epic/estimator.hpp"
#include "epic/matrix.hpp"
#include "fi/fastpath.hpp"
#include "target/arrestment_system.hpp"

namespace epea::exp {

/// Shared campaign sizing. The paper's full size is 25 cases and 10
/// injection moments per bit; EPEA_CASES / EPEA_TIMES environment
/// variables scale it down for quick runs.
struct CampaignOptions {
    std::size_t case_count = 25;
    /// First test-case index of the campaign window. The drivers key every
    /// injection stream by the *global* case index, so running cases
    /// [first, first+count) here is bit-identical to the same slice of a
    /// full sequential campaign — the property the sharded campaign
    /// executor (src/campaign/) is built on.
    std::size_t case_first = 0;
    std::size_t times_per_bit = 10;
    /// Base seed of the permeability estimator's injection-time streams
    /// (severe/recovery campaigns use fixed bases of their own).
    std::uint64_t seed = 0x7ab1e1ULL;
    runtime::Tick max_ticks = target::kMaxRunTicks;
    /// Severe model (Fig 3): injection period in ticks (paper: 20 ms).
    runtime::Tick severe_period = 20;
    /// EA calibration margins (ablation hook: setting settle_fraction to
    /// 1.0 disables the continuous EAs' steady-state band).
    ea::CalibrationMargins ea_margins{};

    /// Fast path (DESIGN.md §9): fork injection runs from cached golden
    /// boundary snapshots and prune on state re-convergence. Results are
    /// bit-identical either way; disable for the reference oracle.
    bool use_fastpath = true;
    /// Batched execution (DESIGN.md §14): run the one-shot injection plans
    /// of a case as lockstep SoA lane batches. Only the permeability and
    /// input-coverage drivers batch (periodic severe/recovery plans stay
    /// scalar by design); bit-identical results either way.
    bool use_batch = true;
    /// Lanes per lockstep batch; 0 picks the auto width.
    std::size_t batch_width = 0;
    /// Shared golden-run cache (the campaign executor passes its own so
    /// goldens are captured once per case across drivers and worker
    /// threads); null uses a private per-driver cache.
    fi::GoldenCache* golden_cache = nullptr;
    /// When set, drivers accumulate their fast-path counters here.
    fi::FastPathStats* fastpath_out = nullptr;
    /// Delta campaigns: restrict permeability injection to these modules
    /// (empty = all). Skipped modules still consume their injection-time
    /// draws, so filtered results are bit-identical per module to a full
    /// run (see epic::EstimatorOptions::module_filter).
    std::vector<std::string> module_filter;

    /// Applies EPEA_CASES / EPEA_TIMES overrides when set.
    [[nodiscard]] static CampaignOptions from_env();
};

/// A named EA subset (e.g. the EH-set or the PA-set).
struct SubsetSpec {
    std::string name;
    std::vector<std::string> ea_names;
};

/// EA-name/signal-name pairs in paper order: EA1..EA7.
[[nodiscard]] const std::vector<std::pair<std::string, std::string>>&
arrestment_ea_signals();

/// Builds the EA1..EA7 bank with parameters calibrated from `golden`
/// fault-free traces of the *current* configuration.
[[nodiscard]] ea::EaBank make_calibrated_bank(
    const model::SystemModel& system, const std::vector<runtime::Trace>& golden,
    const ea::CalibrationMargins& margins = {});

/// Re-calibrates an existing bank in place (per-test-case configuration).
void recalibrate_bank(ea::EaBank& bank, const model::SystemModel& system,
                      const runtime::Trace& golden,
                      const ea::CalibrationMargins& margins = {});

// ---------------------------------------------------------------- Table 1

/// Estimates the 25-pair permeability matrix by fault injection (§5.3).
[[nodiscard]] epic::PermeabilityMatrix estimate_arrestment_permeability(
    target::ArrestmentSystem& sys, const CampaignOptions& options,
    const epic::EstimatorProgress& progress = {});

// ---------------------------------------------------------------- Table 4

/// Per-EA detection coverage for single-bit errors injected into the
/// system input signals (error model A).
struct InputCoverageRow {
    std::string signal;
    std::uint64_t injected = 0;  ///< injections attempted
    std::uint64_t active = 0;    ///< fired before arrestment completed (n_err)
    std::vector<std::uint64_t> detected_per_ea;      ///< indexed like the bank
    std::vector<std::uint64_t> detected_per_subset;  ///< indexed like `subsets`
    std::uint64_t detected_any = 0;  ///< detected by at least one EA
    /// Detection latency [ms] from injection to the earliest EA firing,
    /// over the detected errors (cf. Steininger & Scherrer [18], who
    /// combine coverage and latency when composing EDM sets).
    util::RunningStats latency;
};

struct InputCoverageResult {
    std::vector<std::string> ea_names;
    std::vector<std::string> subset_names;
    std::vector<InputCoverageRow> rows;  ///< one per injected signal
    InputCoverageRow all;                ///< aggregated over all signals
};

struct InputCoverageOptions {
    CampaignOptions campaign;
    /// ADC is excluded by default after the zero-propagation observation
    /// of §6.2 (the bench for Table 4 demonstrates it separately).
    std::vector<std::string> target_signals{"PACNT", "TIC1", "TCNT"};
};

/// Honours options.campaign.case_first/case_count windowing with
/// injection-time streams keyed by the global case index, so shard windows
/// merge bit-identically to a sequential run (the property the campaign
/// executor's kInput kind relies on).
[[nodiscard]] InputCoverageResult input_coverage_experiment(
    target::ArrestmentSystem& sys, const InputCoverageOptions& options,
    const std::vector<SubsetSpec>& subsets);

// ------------------------------------------------------------------ Fig 3

/// Severe error model (§7): periodic bit flips into RAM and stack words.
struct SevereCell {
    std::uint64_t n = 0;
    std::uint64_t detected = 0;
    [[nodiscard]] double coverage() const noexcept {
        return n ? static_cast<double>(detected) / static_cast<double>(n) : 0.0;
    }
};

struct SevereSetResult {
    std::string set_name;
    // [region: 0=RAM, 1=stack, 2=total][class: 0=tot, 1=fail, 2=nofail]
    std::array<std::array<SevereCell, 3>, 3> cells{};
};

struct SevereCoverageResult {
    std::vector<SevereSetResult> sets;
    std::uint64_t runs = 0;
    std::uint64_t failures = 0;  ///< runs classified as system failure (§4.2)
    std::size_t ram_locations = 0;    ///< injectable RAM bytes
    std::size_t stack_locations = 0;  ///< injectable stack bytes
};

[[nodiscard]] SevereCoverageResult severe_coverage_experiment(
    target::ArrestmentSystem& sys, const CampaignOptions& options,
    const std::vector<SubsetSpec>& subsets);

// ------------------------------------------------------------- validation

/// Runs every configured golden run with the bank armed and returns the
/// names of EAs that (incorrectly) fired — must be empty.
[[nodiscard]] std::vector<std::string> false_positive_check(
    target::ArrestmentSystem& sys, const CampaignOptions& options);

}  // namespace epea::exp
