// The paper's published numbers (DSN 2002), kept as reference data so
// benches can print paper-vs-measured side by side and tests can verify
// the analysis math against the published tables.
#pragma once

#include <string>
#include <vector>

#include "epic/matrix.hpp"

namespace epea::exp {

/// One published Table-1 row.
struct PaperPair {
    std::string module;
    std::string in_signal;
    std::string out_signal;
    double value;
};

/// Table 1 — all 25 estimated error permeability values.
[[nodiscard]] const std::vector<PaperPair>& paper_table1();

/// A permeability matrix filled with the paper's Table-1 values.
[[nodiscard]] epic::PermeabilityMatrix paper_matrix(const model::SystemModel& system);

/// Table 2 — published signal error exposures (signals absent from the
/// table had no exposure value).
[[nodiscard]] const std::vector<std::pair<std::string, double>>& paper_exposures();

/// Table 5 — published impact values on TOC2.
[[nodiscard]] const std::vector<std::pair<std::string, double>>& paper_impacts();

/// §5.1 / §5.3 — the published EA location sets (signal names).
[[nodiscard]] const std::vector<std::string>& paper_eh_signals();
[[nodiscard]] const std::vector<std::string>& paper_pa_signals();

/// Table 4 — published coverage for errors injected at system inputs.
struct PaperCoverageRow {
    std::string signal;
    std::uint64_t n_err;
    double total_coverage;
};
[[nodiscard]] const std::vector<PaperCoverageRow>& paper_table4();

}  // namespace epea::exp
